// TypeDescription — the paper's central metadata artifact (Section 5).
//
// A TypeDescription captures exactly the structure the implicit structural
// conformance rules inspect: type name, supertype names, field names and
// types, method and constructor signatures — and nothing more. It is
// deliberately *non-recursive*: member types are referenced by name only,
// "for saving time during the creation of the XML message and for keeping
// this message small" (Section 5.2). It also carries the type identity
// (GUID) and the assembly/download-path information the optimistic
// transport protocol needs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/guid.hpp"
#include "util/interning.hpp"

namespace pti::reflect {

enum class TypeKind : std::uint8_t { Class, Interface, Primitive };
[[nodiscard]] std::string_view to_string(TypeKind kind) noexcept;

enum class Visibility : std::uint8_t { Public, Protected, Private };
[[nodiscard]] std::string_view to_string(Visibility v) noexcept;

/// A formal parameter: a name (informational) and a type reference.
struct ParamDescription {
  std::string name;
  std::string type_name;

  bool operator==(const ParamDescription&) const = default;
};

struct FieldDescription {
  std::string name;
  std::string type_name;
  Visibility visibility = Visibility::Private;
  bool is_static = false;

  bool operator==(const FieldDescription&) const = default;
};

struct MethodDescription {
  std::string name;
  std::string return_type;
  std::vector<ParamDescription> params;
  Visibility visibility = Visibility::Public;
  bool is_static = false;

  [[nodiscard]] std::size_t arity() const noexcept { return params.size(); }
  /// "name(t1,t2)->ret" — used in diagnostics and ambiguity reports.
  [[nodiscard]] std::string signature_string() const;

  bool operator==(const MethodDescription&) const = default;
};

struct ConstructorDescription {
  std::vector<ParamDescription> params;
  Visibility visibility = Visibility::Public;

  [[nodiscard]] std::size_t arity() const noexcept { return params.size(); }
  [[nodiscard]] std::string signature_string() const;

  bool operator==(const ConstructorDescription&) const = default;
};

class TypeDescription {
 public:
  TypeDescription() : TypeDescription("", "", TypeKind::Class) {}
  TypeDescription(std::string namespace_name, std::string simple_name, TypeKind kind)
      : namespace_(std::move(namespace_name)),
        name_(std::move(simple_name)),
        kind_(kind),
        name_id_(util::SymbolTable::global().intern_qualified(namespace_, name_)),
        simple_name_id_(util::SymbolTable::global().intern(name_)) {}

  // --- identity ---------------------------------------------------------
  /// Simple name, e.g. "Person". Conformance rule (i) compares *simple*
  /// names: two teams' `a.Person` and `b.Person` conform by name.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Namespace, e.g. "teamA". May be empty.
  [[nodiscard]] const std::string& namespace_name() const noexcept { return namespace_; }
  /// "teamA.Person" — the registry key; unique per peer universe.
  [[nodiscard]] std::string qualified_name() const;
  /// Interned identity of the case-folded qualified name. Two descriptions
  /// share a name_id iff their qualified names are case-insensitively
  /// equal; every hot path keys on this instead of re-folding strings.
  [[nodiscard]] util::InternedName name_id() const noexcept { return name_id_; }
  /// Interned identity of the case-folded simple name (rule (i) compares
  /// simple names).
  [[nodiscard]] util::InternedName simple_name_id() const noexcept {
    return simple_name_id_;
  }
  [[nodiscard]] const util::Guid& guid() const noexcept { return guid_; }
  void set_guid(const util::Guid& g) noexcept { guid_ = g; }

  [[nodiscard]] TypeKind kind() const noexcept { return kind_; }
  void set_kind(TypeKind k) noexcept {
    kind_ = k;
    fingerprint_.invalidate();
  }

  // --- structure --------------------------------------------------------
  /// Superclass simple-or-qualified name; empty for root classes,
  /// interfaces and primitives.
  [[nodiscard]] const std::string& superclass() const noexcept { return superclass_; }
  void set_superclass(std::string s) {
    superclass_ = std::move(s);
    fingerprint_.invalidate();
  }

  [[nodiscard]] const std::vector<std::string>& interfaces() const noexcept {
    return interfaces_;
  }
  void add_interface(std::string name) {
    interfaces_.push_back(std::move(name));
    fingerprint_.invalidate();
  }

  [[nodiscard]] const std::vector<FieldDescription>& fields() const noexcept {
    return fields_;
  }
  void add_field(FieldDescription f) {
    fields_.push_back(std::move(f));
    fingerprint_.invalidate();
  }

  [[nodiscard]] const std::vector<MethodDescription>& methods() const noexcept {
    return methods_;
  }
  void add_method(MethodDescription m) {
    methods_.push_back(std::move(m));
    fingerprint_.invalidate();
  }

  [[nodiscard]] const std::vector<ConstructorDescription>& constructors() const noexcept {
    return constructors_;
  }
  void add_constructor(ConstructorDescription c) {
    constructors_.push_back(std::move(c));
    fingerprint_.invalidate();
  }

  // --- provenance (optimistic transport, Section 6) ----------------------
  /// Name of the assembly (code unit) implementing this type.
  [[nodiscard]] const std::string& assembly_name() const noexcept { return assembly_name_; }
  void set_assembly_name(std::string n) { assembly_name_ = std::move(n); }

  /// Download path for the assembly, e.g. "net://peerA/teamA.people".
  [[nodiscard]] const std::string& download_path() const noexcept { return download_path_; }
  void set_download_path(std::string p) { download_path_ = std::move(p); }

  /// Opt-in tag used only by the "Safe Structural Conformance for Java"
  /// baseline [Läufer et al. 96], where only tagged types may match
  /// structurally. The paper's own rules ignore this flag.
  [[nodiscard]] bool structural_tag() const noexcept { return structural_tag_; }
  void set_structural_tag(bool v) noexcept { structural_tag_ = v; }

  // --- member lookup ------------------------------------------------------
  [[nodiscard]] const FieldDescription* find_field(std::string_view name) const noexcept;
  /// All methods whose name equals `name` case-insensitively.
  [[nodiscard]] std::vector<const MethodDescription*> find_methods(
      std::string_view name) const;
  [[nodiscard]] const MethodDescription* find_method(std::string_view name,
                                                     std::size_t arity) const noexcept;

  /// Deep equality of the *description* (identity, structure, provenance
  /// excluded from provenance fields: assembly/download-path are compared
  /// too since they are part of the wire format).
  bool operator==(const TypeDescription&) const = default;

  /// The paper's `equals()`: same structure, names compared
  /// case-insensitively, identity (GUID) ignored.
  [[nodiscard]] bool structurally_equal(const TypeDescription& other) const noexcept;

  /// Case-folded hash of everything structurally_equal() inspects (kind,
  /// simple name, supertypes, fields, methods, constructors — namespace and
  /// GUID excluded). Unequal fingerprints mean definitely-not-equal, so
  /// structural comparisons and registry dedup reject in O(1); computed
  /// lazily and memoized until the structure next mutates. Safe to call
  /// from any number of threads on a description that is no longer being
  /// mutated (the memo is guarded by an atomic once-flag); mutation
  /// (add_field etc.) requires external synchronization as usual.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  /// Memoized fingerprint. Derived data: transparent to equality so the
  /// defaulted operator== still compares only the description itself.
  /// The valid flag is a release/acquire once-gate so that concurrent
  /// readers of an immutable (registered) description may race to compute
  /// the fingerprint: both write the same value, and a reader that
  /// observes valid==true (acquire) also observes the published value.
  struct FingerprintCache {
    mutable std::atomic<std::uint64_t> value{0};
    mutable std::atomic<bool> valid{false};

    FingerprintCache() noexcept = default;
    FingerprintCache(const FingerprintCache& other) noexcept { *this = other; }
    FingerprintCache& operator=(const FingerprintCache& other) noexcept {
      const bool v = other.valid.load(std::memory_order_acquire);
      value.store(other.value.load(std::memory_order_relaxed), std::memory_order_relaxed);
      valid.store(v, std::memory_order_release);
      return *this;
    }
    void invalidate() noexcept { valid.store(false, std::memory_order_relaxed); }
    bool operator==(const FingerprintCache&) const noexcept { return true; }
  };

  std::string namespace_;
  std::string name_;
  TypeKind kind_ = TypeKind::Class;
  util::InternedName name_id_;
  util::InternedName simple_name_id_;
  util::Guid guid_;
  std::string superclass_;
  std::vector<std::string> interfaces_;
  std::vector<FieldDescription> fields_;
  std::vector<MethodDescription> methods_;
  std::vector<ConstructorDescription> constructors_;
  std::string assembly_name_;
  std::string download_path_;
  bool structural_tag_ = false;
  FingerprintCache fingerprint_;
};

/// Strips a possibly-qualified type name to its simple name
/// ("teamA.Person" -> "Person").
[[nodiscard]] std::string_view simple_name(std::string_view type_name) noexcept;

}  // namespace pti::reflect
