#include "reflect/type_registry.hpp"

#include <array>
#include <mutex>

#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"

namespace pti::reflect {

TypeDescription make_primitive_description(std::string_view canonical_name) {
  TypeDescription d("", std::string(canonical_name), TypeKind::Primitive);
  d.set_guid(util::Guid::from_name(std::string("pti.primitive.") +
                                   std::string(canonical_name)));
  return d;
}

TypeRegistry::TypeRegistry() {
  static constexpr std::array<std::string_view, 8> kPrimitives = {
      kVoidType, kBoolType,   kInt32Type,  kInt64Type,
      kFloat64Type, kStringType, kObjectType, kListType};
  for (const std::string_view p : kPrimitives) {
    add(make_primitive_description(p));
  }
}

const TypeDescription& TypeRegistry::add(TypeDescription description) {
  const util::InternedName key = description.name_id();
  Shard& shard = shards_[shard_of(key)];
  std::unique_lock shard_lock(shard.mutex);
  if (const auto it = shard.by_name.find(key); it != shard.by_name.end()) {
    if (it->second.structurally_equal(description)) {
      return it->second;  // idempotent re-registration
    }
    throw ReflectError("type '" + description.qualified_name() +
                       "' already registered with a different structure");
  }
  auto [it, inserted] = shard.by_name.emplace(key, std::move(description));
  const TypeDescription* stored = &it->second;
  {
    // Lock order shard -> aux (this is the only place both are held), so
    // the secondary indexes become visible atomically with the name entry.
    std::unique_lock aux_lock(aux_mutex_);
    if (!stored->guid().is_nil()) {
      by_guid_.emplace(stored->guid(), stored);
    }
    by_simple_name_[stored->simple_name_id()].push_back(stored);
    insertion_order_.push_back(stored);
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  return *stored;
}

bool TypeRegistry::contains(std::string_view qualified_name) const noexcept {
  const util::InternedName id = util::SymbolTable::global().find(qualified_name);
  return find_by_id(id) != nullptr;
}

const TypeDescription* TypeRegistry::find_by_id(util::InternedName id) const noexcept {
  if (!id.valid()) return nullptr;
  const Shard& shard = shards_[shard_of(id)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.by_name.find(id);
  return it == shard.by_name.end() ? nullptr : &it->second;
}

const TypeDescription* TypeRegistry::resolve(std::string_view type_name,
                                             std::string_view referrer_namespace) {
  const util::SymbolTable& symbols = util::SymbolTable::global();
  const std::string_view canonical = canonical_primitive(type_name);
  if (const TypeDescription* d = find_by_id(symbols.find(canonical))) return d;
  // Bare (unqualified) names may be qualified by the referrer's namespace
  // or resolved by a unique simple-name match; a qualified name that
  // missed stays missing — it names a specific type we do not know.
  if (type_name.find('.') != std::string_view::npos) return nullptr;
  if (!referrer_namespace.empty()) {
    if (const TypeDescription* d =
            find_by_id(symbols.find_qualified(referrer_namespace, type_name))) {
      return d;
    }
  }
  if (const util::InternedName simple = symbols.find(type_name); simple.valid()) {
    std::shared_lock lock(aux_mutex_);
    if (const auto it = by_simple_name_.find(simple);
        it != by_simple_name_.end() && it->second.size() == 1) {
      return it->second.front();
    }
  }
  return nullptr;
}

const TypeDescription* TypeRegistry::find(std::string_view type_name) {
  return resolve(type_name, "");
}

bool TypeRegistry::references(util::InternedName id) const noexcept {
  if (!id.valid()) return false;
  if (find_by_id(id) != nullptr) return true;
  std::shared_lock lock(aux_mutex_);
  return by_simple_name_.find(id) != by_simple_name_.end();
}

const TypeDescription* TypeRegistry::find_by_guid(const util::Guid& guid) const noexcept {
  std::shared_lock lock(aux_mutex_);
  const auto it = by_guid_.find(guid);
  return it == by_guid_.end() ? nullptr : it->second;
}

std::vector<const TypeDescription*> TypeRegistry::user_types() const {
  std::shared_lock lock(aux_mutex_);
  std::vector<const TypeDescription*> out;
  for (const TypeDescription* d : insertion_order_) {
    if (d->kind() != TypeKind::Primitive) out.push_back(d);
  }
  return out;
}

}  // namespace pti::reflect
