#include "reflect/domain.hpp"

#include <mutex>
#include <set>

#include "reflect/introspect.hpp"
#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"

namespace pti::reflect {

std::vector<const TypeDescription*> Domain::load_assembly(
    std::shared_ptr<const Assembly> assembly, std::string_view download_path) {
  if (!assembly) throw ReflectError("cannot load a null assembly");
  std::unique_lock lock(mutex_);
  if (assemblies_.contains(assembly->name())) return {};

  std::vector<const TypeDescription*> registered;
  registered.reserve(assembly->types().size());
  for (const auto& type : assembly->types()) {
    const TypeDescription& description =
        registry_.add(introspect(*type, assembly->name(), download_path));
    natives_[type->qualified_name()] = type.get();
    natives_by_id_[description.name_id()] = type.get();
    registered.push_back(&description);
  }
  assemblies_.emplace(assembly->name(), std::move(assembly));
  return registered;
}

bool Domain::has_assembly(std::string_view name) const noexcept {
  std::shared_lock lock(mutex_);
  return assemblies_.find(name) != assemblies_.end();
}

const Assembly* Domain::find_assembly(std::string_view name) const noexcept {
  std::shared_lock lock(mutex_);
  const auto it = assemblies_.find(name);
  return it == assemblies_.end() ? nullptr : it->second.get();
}

std::vector<const Assembly*> Domain::assemblies() const {
  std::shared_lock lock(mutex_);
  std::vector<const Assembly*> out;
  out.reserve(assemblies_.size());
  for (const auto& [name, assembly] : assemblies_) out.push_back(assembly.get());
  return out;
}

const NativeType* Domain::find_native(std::string_view qualified_name) const noexcept {
  std::shared_lock lock(mutex_);
  const auto it = natives_.find(qualified_name);
  return it == natives_.end() ? nullptr : it->second;
}

const NativeType* Domain::find_native(util::InternedName qualified_id) const noexcept {
  if (!qualified_id.valid()) return nullptr;
  std::shared_lock lock(mutex_);
  const auto it = natives_by_id_.find(qualified_id);
  return it == natives_by_id_.end() ? nullptr : it->second;
}

std::shared_ptr<DynObject> Domain::instantiate(std::string_view qualified_name,
                                               Args args) const {
  const NativeType* type = find_native(qualified_name);
  if (type == nullptr) {
    throw ReflectError("type '" + std::string(qualified_name) +
                       "' is not loaded in this domain (description-only or unknown)");
  }
  return type->instantiate(args);
}

std::shared_ptr<DynObject> Domain::instantiate(const TypeDescription& type,
                                               Args args) const {
  const NativeType* native = find_native(type.name_id());
  if (native == nullptr) {
    throw ReflectError("type '" + type.qualified_name() +
                       "' is not loaded in this domain (description-only or unknown)");
  }
  return native->instantiate(args);
}

namespace {

void fill_graph(DynObject& object, const Domain& domain,
                std::set<const DynObject*>& visited) {
  if (!visited.insert(&object).second) return;
  if (const NativeType* type = domain.find_native(object.type_name())) {
    for (const auto& f : type->fields()) {
      if (!object.has_field(f.name)) {
        object.set(f.name, default_value_for(f.type_name));
      }
    }
  }
  for (const auto& [name, value] : object.fields()) {
    if (value.kind() == ValueKind::Object && value.as_object()) {
      fill_graph(*value.as_object(), domain, visited);
    } else if (value.kind() == ValueKind::List) {
      for (const Value& item : value.as_list()) {
        if (item.kind() == ValueKind::Object && item.as_object()) {
          fill_graph(*item.as_object(), domain, visited);
        }
      }
    }
  }
}

}  // namespace

void Domain::fill_missing_fields(DynObject& root) const {
  std::set<const DynObject*> visited;
  fill_graph(root, *this, visited);
}

Value Domain::invoke(DynObject& object, std::string_view method_name, Args args) const {
  const NativeType* type = find_native(object.type_name());
  if (type == nullptr) {
    throw ReflectError("cannot invoke '" + std::string(method_name) + "': code for type '" +
                       object.type_name() + "' is not loaded in this domain");
  }
  return type->invoke(object, method_name, args);
}

}  // namespace pti::reflect
