#include "reflect/type_description.hpp"

#include "util/string_util.hpp"

namespace pti::reflect {

std::string_view to_string(TypeKind kind) noexcept {
  switch (kind) {
    case TypeKind::Class: return "class";
    case TypeKind::Interface: return "interface";
    case TypeKind::Primitive: return "primitive";
  }
  return "?";
}

std::string_view to_string(Visibility v) noexcept {
  switch (v) {
    case Visibility::Public: return "public";
    case Visibility::Protected: return "protected";
    case Visibility::Private: return "private";
  }
  return "?";
}

std::string MethodDescription::signature_string() const {
  std::string out = name + "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ",";
    out += params[i].type_name;
  }
  out += ")->" + return_type;
  return out;
}

std::string ConstructorDescription::signature_string() const {
  std::string out = ".ctor(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ",";
    out += params[i].type_name;
  }
  return out + ")";
}

std::string TypeDescription::qualified_name() const {
  if (namespace_.empty()) return name_;
  return namespace_ + "." + name_;
}

const FieldDescription* TypeDescription::find_field(std::string_view name) const noexcept {
  for (const auto& f : fields_) {
    if (util::iequals(f.name, name)) return &f;
  }
  return nullptr;
}

std::vector<const MethodDescription*> TypeDescription::find_methods(
    std::string_view name) const {
  std::vector<const MethodDescription*> out;
  for (const auto& m : methods_) {
    if (util::iequals(m.name, name)) out.push_back(&m);
  }
  return out;
}

const MethodDescription* TypeDescription::find_method(std::string_view name,
                                                      std::size_t arity) const noexcept {
  for (const auto& m : methods_) {
    if (m.arity() == arity && util::iequals(m.name, name)) return &m;
  }
  return nullptr;
}

namespace {

bool iequal_params(const std::vector<ParamDescription>& a,
                   const std::vector<ParamDescription>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!util::iequals(a[i].type_name, b[i].type_name)) return false;
  }
  return true;
}

}  // namespace

bool TypeDescription::structurally_equal(const TypeDescription& other) const noexcept {
  if (kind_ != other.kind_) return false;
  if (!util::iequals(name_, other.name_)) return false;
  if (!util::iequals(util::to_lower(superclass_), util::to_lower(other.superclass_))) {
    return false;
  }
  if (interfaces_.size() != other.interfaces_.size()) return false;
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    if (!util::iequals(interfaces_[i], other.interfaces_[i])) return false;
  }
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& fa = fields_[i];
    const auto& fb = other.fields_[i];
    if (!util::iequals(fa.name, fb.name) || !util::iequals(fa.type_name, fb.type_name) ||
        fa.visibility != fb.visibility || fa.is_static != fb.is_static) {
      return false;
    }
  }
  if (methods_.size() != other.methods_.size()) return false;
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    const auto& ma = methods_[i];
    const auto& mb = other.methods_[i];
    if (!util::iequals(ma.name, mb.name) ||
        !util::iequals(ma.return_type, mb.return_type) ||
        !iequal_params(ma.params, mb.params) || ma.visibility != mb.visibility ||
        ma.is_static != mb.is_static) {
      return false;
    }
  }
  if (constructors_.size() != other.constructors_.size()) return false;
  for (std::size_t i = 0; i < constructors_.size(); ++i) {
    if (!iequal_params(constructors_[i].params, other.constructors_[i].params) ||
        constructors_[i].visibility != other.constructors_[i].visibility) {
      return false;
    }
  }
  return true;
}

std::string_view simple_name(std::string_view type_name) noexcept {
  const std::size_t dot = type_name.rfind('.');
  return dot == std::string_view::npos ? type_name : type_name.substr(dot + 1);
}

}  // namespace pti::reflect
