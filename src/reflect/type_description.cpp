#include "reflect/type_description.hpp"

#include "util/hash.hpp"
#include "util/interning.hpp"
#include "util/string_util.hpp"

namespace pti::reflect {

std::string_view to_string(TypeKind kind) noexcept {
  switch (kind) {
    case TypeKind::Class: return "class";
    case TypeKind::Interface: return "interface";
    case TypeKind::Primitive: return "primitive";
  }
  return "?";
}

std::string_view to_string(Visibility v) noexcept {
  switch (v) {
    case Visibility::Public: return "public";
    case Visibility::Protected: return "protected";
    case Visibility::Private: return "private";
  }
  return "?";
}

std::string MethodDescription::signature_string() const {
  std::string out = name + "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ",";
    out += params[i].type_name;
  }
  out += ")->" + return_type;
  return out;
}

std::string ConstructorDescription::signature_string() const {
  std::string out = ".ctor(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ",";
    out += params[i].type_name;
  }
  return out + ")";
}

std::string TypeDescription::qualified_name() const {
  if (namespace_.empty()) return name_;
  return namespace_ + "." + name_;
}

const FieldDescription* TypeDescription::find_field(std::string_view name) const noexcept {
  for (const auto& f : fields_) {
    if (util::iequals(f.name, name)) return &f;
  }
  return nullptr;
}

std::vector<const MethodDescription*> TypeDescription::find_methods(
    std::string_view name) const {
  std::vector<const MethodDescription*> out;
  for (const auto& m : methods_) {
    if (util::iequals(m.name, name)) out.push_back(&m);
  }
  return out;
}

const MethodDescription* TypeDescription::find_method(std::string_view name,
                                                      std::size_t arity) const noexcept {
  for (const auto& m : methods_) {
    if (m.arity() == arity && util::iequals(m.name, name)) return &m;
  }
  return nullptr;
}

namespace {

bool iequal_params(const std::vector<ParamDescription>& a,
                   const std::vector<ParamDescription>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!util::iequals(a[i].type_name, b[i].type_name)) return false;
  }
  return true;
}

}  // namespace

namespace {

/// Folds a string into the running fingerprint with a terminator so that
/// adjacent fields cannot alias ("ab","c" vs "a","bc").
[[nodiscard]] std::uint64_t fp_string(std::uint64_t h, std::string_view s) noexcept {
  h = util::fold_hash(s, h);
  h ^= 0x1f;
  h *= util::kFnvPrime64;
  return h;
}

[[nodiscard]] std::uint64_t fp_byte(std::uint64_t h, std::uint8_t b) noexcept {
  h ^= b;
  h *= util::kFnvPrime64;
  return h;
}

[[nodiscard]] std::uint64_t fp_size(std::uint64_t h, std::size_t n) noexcept {
  for (int i = 0; i < 4; ++i) h = fp_byte(h, static_cast<std::uint8_t>(n >> (8 * i)));
  return h;
}

[[nodiscard]] std::uint64_t fp_params(std::uint64_t h,
                                      const std::vector<ParamDescription>& params) noexcept {
  h = fp_size(h, params.size());
  for (const auto& p : params) h = fp_string(h, p.type_name);
  return h;
}

}  // namespace

std::uint64_t TypeDescription::fingerprint() const noexcept {
  // Once-gate: concurrent readers of an immutable description may race
  // here; each computes the same hash and the release store below pairs
  // with this acquire load to publish it.
  if (fingerprint_.valid.load(std::memory_order_acquire)) {
    return fingerprint_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t h = util::fnv1a64("pti.fp");
  h = fp_byte(h, static_cast<std::uint8_t>(kind_));
  h = fp_string(h, name_);
  h = fp_string(h, superclass_);
  h = fp_size(h, interfaces_.size());
  for (const auto& itf : interfaces_) h = fp_string(h, itf);
  h = fp_size(h, fields_.size());
  for (const auto& f : fields_) {
    h = fp_string(h, f.name);
    h = fp_string(h, f.type_name);
    h = fp_byte(h, static_cast<std::uint8_t>(f.visibility));
    h = fp_byte(h, f.is_static ? 1 : 0);
  }
  h = fp_size(h, methods_.size());
  for (const auto& m : methods_) {
    h = fp_string(h, m.name);
    h = fp_string(h, m.return_type);
    h = fp_params(h, m.params);
    h = fp_byte(h, static_cast<std::uint8_t>(m.visibility));
    h = fp_byte(h, m.is_static ? 1 : 0);
  }
  h = fp_size(h, constructors_.size());
  for (const auto& c : constructors_) {
    h = fp_params(h, c.params);
    h = fp_byte(h, static_cast<std::uint8_t>(c.visibility));
  }
  fingerprint_.value.store(h, std::memory_order_relaxed);
  fingerprint_.valid.store(true, std::memory_order_release);
  return h;
}

bool TypeDescription::structurally_equal(const TypeDescription& other) const noexcept {
  // Fingerprints hash exactly the structure compared below, so a mismatch
  // is an O(1) definitive rejection; a match still runs the full
  // comparison to rule out hash collisions.
  if (fingerprint() != other.fingerprint()) return false;
  if (kind_ != other.kind_) return false;
  if (!util::iequals(name_, other.name_)) return false;
  if (!util::iequals(superclass_, other.superclass_)) return false;
  if (interfaces_.size() != other.interfaces_.size()) return false;
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    if (!util::iequals(interfaces_[i], other.interfaces_[i])) return false;
  }
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& fa = fields_[i];
    const auto& fb = other.fields_[i];
    if (!util::iequals(fa.name, fb.name) || !util::iequals(fa.type_name, fb.type_name) ||
        fa.visibility != fb.visibility || fa.is_static != fb.is_static) {
      return false;
    }
  }
  if (methods_.size() != other.methods_.size()) return false;
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    const auto& ma = methods_[i];
    const auto& mb = other.methods_[i];
    if (!util::iequals(ma.name, mb.name) ||
        !util::iequals(ma.return_type, mb.return_type) ||
        !iequal_params(ma.params, mb.params) || ma.visibility != mb.visibility ||
        ma.is_static != mb.is_static) {
      return false;
    }
  }
  if (constructors_.size() != other.constructors_.size()) return false;
  for (std::size_t i = 0; i < constructors_.size(); ++i) {
    if (!iequal_params(constructors_[i].params, other.constructors_[i].params) ||
        constructors_[i].visibility != other.constructors_[i].visibility) {
      return false;
    }
  }
  return true;
}

std::string_view simple_name(std::string_view type_name) noexcept {
  const std::size_t dot = type_name.rfind('.');
  return dot == std::string_view::npos ? type_name : type_name.substr(dot + 1);
}

}  // namespace pti::reflect
