// Object-graph utilities: deep cloning (with preserved sharing and
// cycles) and graph measurement. Deep cloning gives *local* pass-by-value
// semantics — the same observable behaviour as a network round trip
// through the SOAP/binary serializers, without the wire.
#pragma once

#include <cstddef>
#include <memory>

#include "reflect/dyn_object.hpp"
#include "reflect/value.hpp"

namespace pti::reflect {

/// Structure-preserving deep copy: every distinct object in the input
/// graph maps to exactly one fresh object in the output (sharing and
/// cycles survive); primitives and strings copy by value.
[[nodiscard]] Value deep_clone(const Value& root);
[[nodiscard]] std::shared_ptr<DynObject> deep_clone(const std::shared_ptr<DynObject>& root);

struct GraphStats {
  std::size_t objects = 0;       ///< distinct objects reachable
  std::size_t values = 0;        ///< total value slots (fields + list items)
  std::size_t max_depth = 0;     ///< deepest object nesting (cycles cut)
  bool has_cycles = false;
};

/// Walks the graph once and reports its shape.
[[nodiscard]] GraphStats measure_graph(const Value& root);

}  // namespace pti::reflect
