#include "reflect/graph_util.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace pti::reflect {

namespace {

class Cloner {
 public:
  Value clone_value(const Value& v) {
    switch (v.kind()) {
      case ValueKind::Object: {
        const auto& obj = v.as_object();
        if (!obj) return v;
        return Value(clone_object(obj));
      }
      case ValueKind::List: {
        Value::List items;
        items.reserve(v.as_list().size());
        for (const Value& item : v.as_list()) items.push_back(clone_value(item));
        return Value(std::move(items));
      }
      default:
        return v;  // scalars are value types
    }
  }

  std::shared_ptr<DynObject> clone_object(const std::shared_ptr<DynObject>& obj) {
    const auto it = clones_.find(obj.get());
    if (it != clones_.end()) return it->second;
    auto copy = DynObject::make(obj->type_name(), obj->type_guid());
    clones_.emplace(obj.get(), copy);  // register before fields: cycles close
    for (const auto& [name, value] : obj->fields()) {
      copy->set(name, clone_value(value));
    }
    return copy;
  }

 private:
  std::unordered_map<const DynObject*, std::shared_ptr<DynObject>> clones_;
};

class Measurer {
 public:
  void visit_value(const Value& v, std::size_t depth, GraphStats& stats) {
    ++stats.values;
    switch (v.kind()) {
      case ValueKind::Object: {
        const auto& obj = v.as_object();
        if (!obj) return;
        if (on_path_.contains(obj.get())) {
          stats.has_cycles = true;
          return;
        }
        const bool first_visit = visited_.insert(obj.get()).second;
        if (first_visit) ++stats.objects;
        stats.max_depth = std::max(stats.max_depth, depth + 1);
        if (!first_visit) return;  // measure each object's content once
        on_path_.insert(obj.get());
        for (const auto& [name, value] : obj->fields()) {
          visit_value(value, depth + 1, stats);
        }
        on_path_.erase(obj.get());
        return;
      }
      case ValueKind::List:
        for (const Value& item : v.as_list()) visit_value(item, depth, stats);
        return;
      default:
        return;
    }
  }

 private:
  std::set<const DynObject*> visited_;
  std::set<const DynObject*> on_path_;
};

}  // namespace

Value deep_clone(const Value& root) {
  Cloner cloner;
  return cloner.clone_value(root);
}

std::shared_ptr<DynObject> deep_clone(const std::shared_ptr<DynObject>& root) {
  if (!root) return nullptr;
  Cloner cloner;
  return cloner.clone_object(root);
}

GraphStats measure_graph(const Value& root) {
  GraphStats stats;
  Measurer measurer;
  measurer.visit_value(root, 0, stats);  // `values` counts every slot incl. root
  return stats;
}

}  // namespace pti::reflect
