#include "reflect/type_builder.hpp"

#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"

namespace pti::reflect {

TypeBuilder::TypeBuilder(std::string namespace_name, std::string simple_name, TypeKind kind)
    : namespace_(std::move(namespace_name)), name_(std::move(simple_name)), kind_(kind) {
  const std::string qualified = namespace_.empty() ? name_ : namespace_ + "." + name_;
  guid_ = util::Guid::from_name(qualified);
  if (kind_ == TypeKind::Class) superclass_ = std::string(kObjectType);
}

TypeBuilder& TypeBuilder::superclass(std::string name) {
  superclass_ = std::move(name);
  return *this;
}

TypeBuilder& TypeBuilder::implements(std::string interface_name) {
  interfaces_.push_back(std::move(interface_name));
  return *this;
}

TypeBuilder& TypeBuilder::field(std::string name, std::string type_name,
                                Visibility visibility, bool is_static) {
  fields_.push_back(FieldDescription{std::move(name), std::move(type_name), visibility,
                                     is_static});
  return *this;
}

TypeBuilder& TypeBuilder::method(std::string name, std::string return_type,
                                 std::vector<ParamDescription> params, NativeMethod body,
                                 Visibility visibility, bool is_static) {
  if (kind_ != TypeKind::Interface && !body) {
    throw ReflectError("method '" + name + "' of class '" + name_ + "' needs a body");
  }
  MethodDescription sig;
  sig.name = std::move(name);
  sig.return_type = std::move(return_type);
  sig.params = std::move(params);
  sig.visibility = visibility;
  sig.is_static = is_static;
  methods_.push_back(NativeMethodDef{std::move(sig), std::move(body)});
  return *this;
}

TypeBuilder& TypeBuilder::constructor(std::vector<ParamDescription> params, NativeCtor body,
                                      Visibility visibility) {
  if (kind_ == TypeKind::Interface) {
    throw ReflectError("interface '" + name_ + "' cannot declare constructors");
  }
  ConstructorDescription sig;
  sig.params = std::move(params);
  sig.visibility = visibility;
  ctors_.push_back(NativeCtorDef{std::move(sig), std::move(body)});
  return *this;
}

TypeBuilder& TypeBuilder::guid(util::Guid g) {
  guid_ = g;
  return *this;
}

TypeBuilder& TypeBuilder::structural_tag(bool enabled) {
  structural_tag_ = enabled;
  return *this;
}

std::shared_ptr<const NativeType> TypeBuilder::build() const {
  return std::make_shared<const NativeType>(namespace_, name_, kind_, guid_, superclass_,
                                            interfaces_, fields_, methods_, ctors_,
                                            structural_tag_);
}

}  // namespace pti::reflect
