// NativeType and Assembly — the "code" side of the reflection substrate.
//
// In the paper, once two types conform, the receiver downloads the
// *assembly* (the .NET code unit) implementing the sender's type so the
// object can be deserialized and invoked. Here an Assembly is a named
// bundle of NativeTypes; a NativeType pairs every method/constructor
// signature with an executable body (a std::function over the dynamic
// object model). Peers that have not yet "downloaded" an assembly hold
// only serialized bytes and type descriptions — never NativeTypes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "reflect/dyn_object.hpp"
#include "reflect/type_description.hpp"
#include "reflect/value.hpp"

namespace pti::reflect {

/// Body of an instance method. `self` is the receiver; `args` match the
/// declared parameters positionally.
using NativeMethod = std::function<Value(DynObject& self, Args args)>;

/// Body of a constructor: initializes fields of a freshly created `self`.
using NativeCtor = std::function<void(DynObject& self, Args args)>;

struct NativeMethodDef {
  MethodDescription signature;
  NativeMethod body;  ///< empty for interface methods
};

struct NativeCtorDef {
  ConstructorDescription signature;
  NativeCtor body;
};

/// A fully implemented runtime type: metadata plus executable bodies.
/// Instances are immutable after construction by TypeBuilder.
class NativeType {
 public:
  NativeType(std::string namespace_name, std::string simple_name, TypeKind kind,
             util::Guid guid, std::string superclass, std::vector<std::string> interfaces,
             std::vector<FieldDescription> fields, std::vector<NativeMethodDef> methods,
             std::vector<NativeCtorDef> constructors, bool structural_tag);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& namespace_name() const noexcept { return namespace_; }
  [[nodiscard]] const std::string& qualified_name() const noexcept { return qualified_name_; }
  [[nodiscard]] const util::Guid& guid() const noexcept { return guid_; }
  [[nodiscard]] TypeKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& superclass() const noexcept { return superclass_; }
  [[nodiscard]] const std::vector<std::string>& interfaces() const noexcept {
    return interfaces_;
  }
  [[nodiscard]] const std::vector<FieldDescription>& fields() const noexcept {
    return fields_;
  }
  [[nodiscard]] const std::vector<NativeMethodDef>& methods() const noexcept {
    return methods_;
  }
  [[nodiscard]] const std::vector<NativeCtorDef>& constructors() const noexcept {
    return constructors_;
  }
  [[nodiscard]] bool structural_tag() const noexcept { return structural_tag_; }

  /// Creates an instance: default-initializes declared fields, then runs
  /// the constructor selected by arity. Throws ReflectError when no
  /// constructor matches or the type is an interface.
  [[nodiscard]] std::shared_ptr<DynObject> instantiate(Args args = {}) const;

  /// Zero-argument instantiation without requiring a declared constructor;
  /// fields get default values. Used by deserializers before field fill-in.
  [[nodiscard]] std::shared_ptr<DynObject> instantiate_raw() const;

  /// Invokes a method by (case-insensitive) name and arity.
  Value invoke(DynObject& self, std::string_view method_name, Args args) const;

  [[nodiscard]] const NativeMethodDef* find_method(std::string_view name,
                                                   std::size_t arity) const noexcept;

 private:
  std::string namespace_;
  std::string name_;
  std::string qualified_name_;
  TypeKind kind_;
  util::Guid guid_;
  std::string superclass_;
  std::vector<std::string> interfaces_;
  std::vector<FieldDescription> fields_;
  std::vector<NativeMethodDef> methods_;
  std::vector<NativeCtorDef> constructors_;
  bool structural_tag_ = false;
};

/// A named code unit — the paper's unit of on-demand code download.
class Assembly {
 public:
  explicit Assembly(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void add_type(std::shared_ptr<const NativeType> type);
  [[nodiscard]] const std::vector<std::shared_ptr<const NativeType>>& types() const noexcept {
    return types_;
  }
  /// Lookup by qualified or simple name (case-insensitive); nullptr if absent.
  [[nodiscard]] const NativeType* find_type(std::string_view type_name) const noexcept;

  /// Simulated on-the-wire size of the code unit: a deterministic function
  /// of its metadata volume (types, members, name lengths). This is what
  /// the simulated network charges when a peer downloads the assembly,
  /// making "code is much bigger than a type description" hold by
  /// construction, as in any real platform.
  [[nodiscard]] std::size_t simulated_code_size() const noexcept;

 private:
  std::string name_;
  std::vector<std::shared_ptr<const NativeType>> types_;
};

}  // namespace pti::reflect
