#include "reflect/type_parser.hpp"

#include <string>

#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"
#include "util/guid.hpp"

namespace pti::reflect {

namespace {

class DeclParser {
 public:
  explicit DeclParser(std::string_view text) : text_(text) {}

  std::vector<TypeDescription> parse_file() {
    std::vector<TypeDescription> types;
    skip_trivia();
    while (!at_end()) {
      // A `namespace x;` directive applies to the declarations that
      // follow, until the next directive — so one file can declare several
      // teams' views side by side.
      if (looking_at_keyword("namespace")) {
        consume_keyword("namespace");
        namespace_ = parse_qname();
        expect(';');
      } else {
        types.push_back(parse_type());
      }
      skip_trivia();
    }
    return types;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ReflectError("type declaration error at line " + std::to_string(line_) +
                       ", column " + std::to_string(column_) + ": " + message);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_trivia() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (!at_end() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    skip_trivia();
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    advance();
  }

  [[nodiscard]] static bool is_ident_start(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  }
  [[nodiscard]] static bool is_ident_char(char c) noexcept {
    return is_ident_start(c) || (c >= '0' && c <= '9');
  }

  std::string parse_ident() {
    skip_trivia();
    if (at_end() || !is_ident_start(peek())) fail("expected an identifier");
    std::string out;
    while (!at_end() && is_ident_char(text_[pos_])) out.push_back(advance());
    return out;
  }

  /// Dotted name: `a.b.C`.
  std::string parse_qname() {
    std::string out = parse_ident();
    while (!at_end() && text_[pos_] == '.') {
      advance();
      out += '.';
      out += parse_ident();
    }
    return out;
  }

  [[nodiscard]] bool looking_at_keyword(std::string_view keyword) {
    skip_trivia();
    if (text_.size() - pos_ < keyword.size()) return false;
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    const std::size_t after = pos_ + keyword.size();
    return after >= text_.size() || !is_ident_char(text_[after]);
  }

  void consume_keyword(std::string_view keyword) {
    if (!looking_at_keyword(keyword)) fail("expected '" + std::string(keyword) + "'");
    for (std::size_t i = 0; i < keyword.size(); ++i) advance();
  }

  struct Modifiers {
    Visibility visibility;
    bool explicit_visibility = false;
    bool is_static = false;
  };

  Modifiers parse_modifiers() {
    Modifiers m{Visibility::Public, false, false};
    while (true) {
      if (looking_at_keyword("public")) {
        consume_keyword("public");
        m.visibility = Visibility::Public;
        m.explicit_visibility = true;
      } else if (looking_at_keyword("protected")) {
        consume_keyword("protected");
        m.visibility = Visibility::Protected;
        m.explicit_visibility = true;
      } else if (looking_at_keyword("private")) {
        consume_keyword("private");
        m.visibility = Visibility::Private;
        m.explicit_visibility = true;
      } else if (looking_at_keyword("static")) {
        consume_keyword("static");
        m.is_static = true;
      } else {
        return m;
      }
    }
  }

  std::vector<ParamDescription> parse_params() {
    std::vector<ParamDescription> params;
    expect('(');
    skip_trivia();
    if (peek() == ')') {
      advance();
      return params;
    }
    while (true) {
      ParamDescription p;
      p.type_name = parse_qname();
      p.name = parse_ident();
      params.push_back(std::move(p));
      skip_trivia();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(')');
      return params;
    }
  }

  TypeDescription parse_type() {
    TypeKind kind;
    if (looking_at_keyword("class")) {
      consume_keyword("class");
      kind = TypeKind::Class;
    } else if (looking_at_keyword("interface")) {
      consume_keyword("interface");
      kind = TypeKind::Interface;
    } else {
      fail("expected 'class' or 'interface'");
    }
    const std::string name = parse_ident();
    TypeDescription type(namespace_, name, kind);
    type.set_guid(util::Guid::from_name(type.qualified_name()));
    if (kind == TypeKind::Class) type.set_superclass(std::string(kObjectType));

    skip_trivia();
    if (peek() == ':') {
      advance();
      if (kind == TypeKind::Interface) fail("interfaces cannot declare a superclass");
      type.set_superclass(parse_qname());
    }
    if (looking_at_keyword("implements")) {
      consume_keyword("implements");
      type.add_interface(parse_qname());
      skip_trivia();
      while (peek() == ',') {
        advance();
        type.add_interface(parse_qname());
        skip_trivia();
      }
    }
    if (looking_at_keyword("tagged")) {
      consume_keyword("tagged");
      type.set_structural_tag(true);
    }

    expect('{');
    skip_trivia();
    while (peek() != '}') {
      parse_member(type, name, kind);
      skip_trivia();
    }
    advance();  // '}'
    return type;
  }

  void parse_member(TypeDescription& type, const std::string& type_name, TypeKind kind) {
    const Modifiers mods = parse_modifiers();
    const std::string first = parse_qname();
    skip_trivia();

    // Constructor: `TypeName ( ... ) ;`
    if (first == type_name && peek() == '(') {
      if (kind == TypeKind::Interface) fail("interfaces cannot declare constructors");
      ConstructorDescription ctor;
      ctor.params = parse_params();
      ctor.visibility = mods.visibility;
      expect(';');
      type.add_constructor(std::move(ctor));
      return;
    }

    const std::string member_name = parse_ident();
    skip_trivia();
    if (peek() == '(') {
      MethodDescription method;
      method.name = member_name;
      method.return_type = first;
      method.params = parse_params();
      method.visibility = mods.visibility;
      method.is_static = mods.is_static;
      expect(';');
      type.add_method(std::move(method));
      return;
    }

    if (kind == TypeKind::Interface) fail("interfaces cannot declare fields");
    FieldDescription field;
    field.name = member_name;
    field.type_name = first;
    // Fields default to private, like the builder.
    field.visibility = mods.explicit_visibility ? mods.visibility : Visibility::Private;
    field.is_static = mods.is_static;
    expect(';');
    type.add_field(std::move(field));
  }

  std::string_view text_;
  std::string namespace_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

std::vector<TypeDescription> parse_type_declarations(std::string_view text) {
  DeclParser parser(text);
  return parser.parse_file();
}

std::size_t declare_types(TypeRegistry& registry, std::string_view text) {
  const std::vector<TypeDescription> types = parse_type_declarations(text);
  for (const TypeDescription& t : types) {
    registry.add(t);
  }
  return types.size();
}

}  // namespace pti::reflect
