#include "core/resource_governor.hpp"

#include <algorithm>
#include <utility>

#include "conform/conformance_cache.hpp"
#include "reflect/type_registry.hpp"

namespace pti::core {

ResourceGovernor::ResourceGovernor(GovernorConfig config, util::EpochManager& em)
    : config_(config), em_(em) {
  config_.min_idle_ticks = std::max<std::uint32_t>(1, config_.min_idle_ticks);
}

ResourceGovernor::~ResourceGovernor() { stop(); }

void ResourceGovernor::watch(reflect::TypeRegistry& registry) {
  std::lock_guard lock(mutex_);
  if (std::find(registries_.begin(), registries_.end(), &registry) ==
      registries_.end()) {
    registries_.push_back(&registry);
  }
}

void ResourceGovernor::watch(conform::ConformanceCache& cache) {
  std::lock_guard lock(mutex_);
  if (std::find(caches_.begin(), caches_.end(), &cache) == caches_.end()) {
    caches_.push_back(&cache);
  }
}

void ResourceGovernor::add_veto(std::function<bool(util::InternedName)> veto) {
  std::lock_guard lock(mutex_);
  vetoes_.push_back(std::move(veto));
}

void ResourceGovernor::add_post_sweep_hook(std::function<void()> hook) {
  std::lock_guard lock(mutex_);
  post_sweep_hooks_.push_back(std::move(hook));
}

bool ResourceGovernor::in_use(util::InternedName id) const {
  // Callers hold mutex_ (sweep does); the lists are stable underneath.
  for (const reflect::TypeRegistry* registry : registries_) {
    if (registry->references(id)) return true;
  }
  for (const auto& veto : vetoes_) {
    if (veto && veto(id)) return true;
  }
  return false;
}

SweepReport ResourceGovernor::sweep() {
  SweepReport report;
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard lock(mutex_);
    util::SymbolTable& symbols = util::SymbolTable::global();
    symbols.advance_tick();
    for (conform::ConformanceCache* cache : caches_) {
      cache->advance_tick();
      report.cache_evicted +=
          cache->evict_cold(em_, config_.min_idle_ticks, config_.max_evict_per_sweep);
    }
    report.names_evicted =
        symbols.evict_cold(em_, config_.min_idle_ticks, config_.max_evict_per_sweep,
                           [this](util::InternedName id) { return in_use(id); });
    report.reclaimed = em_.try_reclaim();
    report.epoch = em_.epoch();
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    hooks = post_sweep_hooks_;  // copy: hooks run outside the sweep lock
  }
  for (const auto& hook : hooks) {
    if (hook) hook();
  }
  return report;
}

void ResourceGovernor::start(std::chrono::milliseconds period) {
  std::lock_guard lock(run_mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  sweeper_ = std::thread([this, period] {
    std::unique_lock lock(run_mutex_);
    while (!stopping_) {
      if (stop_cv_.wait_for(lock, period, [this] { return stopping_; })) break;
      lock.unlock();
      sweep();
      lock.lock();
    }
  });
}

void ResourceGovernor::stop() {
  std::thread sweeper;
  {
    std::lock_guard lock(run_mutex_);
    if (!running_) return;
    stopping_ = true;
    sweeper = std::move(sweeper_);
  }
  stop_cv_.notify_all();
  if (sweeper.joinable()) sweeper.join();
  std::lock_guard lock(run_mutex_);
  running_ = false;
}

}  // namespace pti::core
