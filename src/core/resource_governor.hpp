// ResourceGovernor — the maintenance loop of hostile-peer resource
// governance: it ties the epoch manager, the interned-name table, and the
// conformance caches into one periodic sweep that keeps a long-running
// peer's memory bounded under churn.
//
// Division of labour (see docs/ARCHITECTURE.md, "Resource governance"):
//   * PeerQuotaTable bounds what a peer may ADD — bytes/sec, in-flight
//     exchanges, frame size, and crucially distinct *registered* names
//     (the TypeRegistry is append-only, so registration is the permanent
//     cost a budget must gate);
//   * the governor bounds what churn leaves BEHIND — transient interns
//     (envelope names of rejected pushes, names of detached peers, link
//     endpoints) and cold conformance verdicts, which no budget covers
//     because they are a side effect of merely *looking at* traffic.
//
// A sweep advances the stores' logical clocks, evicts entries idle for
// `min_idle_ticks` sweeps, and runs the epoch manager's reclaim step. A
// symbol is only evictable when NO watched registry references it and no
// added veto claims it (`TypeRegistry::references`): eviction recycles
// interned ids, so anything held by a long-lived id-keyed structure must
// be vetoed or a recycled id would alias into it.
//
// Safety contract (the quiescent-point rule, see util/epoch.hpp): readers
// that hold pointers into the stores without an EpochManager::Pin must not
// overlap a sweep. The transports pin around each message service, so a
// governor thread sweeping concurrently with message traffic is safe; code
// that probes the stores outside any transport (tests, tools) must either
// pin or keep the governor stopped.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/epoch.hpp"
#include "util/interning.hpp"

namespace pti::reflect {
class TypeRegistry;
}
namespace pti::conform {
class ConformanceCache;
}

namespace pti::core {

struct GovernorConfig {
  /// A store entry must have been idle for this many sweeps before it is
  /// evictable (>= 1; a just-used entry is never evicted).
  std::uint32_t min_idle_ticks = 2;
  /// Per-store eviction cap per sweep — bounds sweep latency so the
  /// governor thread never stalls message traffic behind a giant purge.
  std::size_t max_evict_per_sweep = 256;
};

/// What one sweep did (cumulative totals live on the stores themselves).
struct SweepReport {
  std::size_t cache_evicted = 0;  ///< conformance verdicts retired
  std::size_t names_evicted = 0;  ///< interned names retired
  std::size_t reclaimed = 0;      ///< retired objects actually freed
  std::uint64_t epoch = 0;        ///< global epoch after the sweep
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(GovernorConfig config = {},
                            util::EpochManager& em = util::EpochManager::global());
  ~ResourceGovernor();
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Registers `registry` as an eviction veto: any interned id it
  /// references is permanent. Watch every registry whose process shares
  /// the global SymbolTable. The registry must outlive the governor (or
  /// the last sweep).
  void watch(reflect::TypeRegistry& registry);

  /// Registers `cache` for cold-verdict eviction. Same lifetime rule.
  void watch(conform::ConformanceCache& cache);

  /// Adds an extra eviction veto for interned ids held by structures the
  /// governor cannot see (e.g. a SimNetwork's link/partition keys).
  void add_veto(std::function<bool(util::InternedName)> veto);

  /// Registers a hook invoked after every sweep, outside the sweep lock —
  /// the invalidation edge for state derived from the swept stores (e.g. a
  /// Peer's SessionTable verdict cache: hook it to invalidate_verdicts()
  /// so reclamation can never leave a stale cached verdict servable). The
  /// hook must be thread-safe and must not call back into the governor.
  void add_post_sweep_hook(std::function<void()> hook);

  /// One maintenance pass: advance ticks, evict cold cache entries, evict
  /// cold unreferenced symbols, reclaim. Thread-safe; callable directly
  /// (deterministic tests) or via the background thread.
  SweepReport sweep();

  /// Starts the background sweeper thread. No-op when already running.
  void start(std::chrono::milliseconds period);
  /// Stops and joins the sweeper thread. Idempotent; the destructor calls
  /// it.
  void stop();

  [[nodiscard]] std::size_t sweeps() const noexcept {
    return sweeps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] util::EpochManager& epoch_manager() noexcept { return em_; }

 private:
  /// The symbol-eviction veto: referenced by any watched registry or
  /// claimed by any added veto.
  [[nodiscard]] bool in_use(util::InternedName id) const;

  GovernorConfig config_;
  util::EpochManager& em_;

  mutable std::mutex mutex_;  ///< guards the watch/veto lists + sweep runs
  std::vector<reflect::TypeRegistry*> registries_;
  std::vector<conform::ConformanceCache*> caches_;
  std::vector<std::function<bool(util::InternedName)>> vetoes_;
  std::vector<std::function<void()>> post_sweep_hooks_;
  std::atomic<std::size_t> sweeps_{0};

  std::mutex run_mutex_;  ///< guards running_/stopping_ with stop_cv_
  std::condition_variable stop_cv_;
  std::thread sweeper_;
  bool running_ = false;
  bool stopping_ = false;
};

}  // namespace pti::core
