// The public API of the library: InteropSystem (the simulated distributed
// universe) and InteropRuntime (one participant's middleware instance).
//
// This is the layer a downstream user programs against. The v2 surface is
// handle-based: resolve a name once, then hand the TypeHandle back on
// every call — no per-call string hashing or case folding:
//
//   pti::core::InteropSystem system;
//   auto& alice = system.create_runtime("alice");
//   auto& bob   = system.create_runtime("bob");
//
//   alice.publish_assembly(team_a_assembly);          // types + code
//   bob.publish_assembly(team_b_assembly);
//
//   const auto person_b = bob.type("teamB.Person");   // resolve once
//   auto sub = bob.subscribe(person_b, [&](const auto& ev) {
//     // ev.adapted is usable as teamB.Person even though alice sent
//     // a teamA.Person — implicit structural conformance at work.
//     bob.call(ev.adapted, "getPersonName");
//   });
//
//   const auto person_a = alice.type("teamA.Person");
//   const Value args[] = {Value("Alice")};
//   alice.send("bob", alice.make(person_a, args));
//
// Every fallible call also has a non-throwing `try_` variant returning
// Expected<T, core::Error>; the throwing overloads are implemented on top
// and rethrow the original library exception. The v1 string-based calls
// remain as thin shims over the handle paths.
//
// Everything underneath — hybrid envelopes, the optimistic transport
// protocol, on-demand description/code download, conformance checking and
// dynamic proxies — is the machinery of the paper, reachable through the
// accessors when finer control is needed. The network is consumed through
// the abstract transport::Transport seam; InteropSystem defaults to the
// deterministic SimNetwork but accepts any Transport implementation.
//
// Thread safety: steady-state traffic is concurrent — N runtimes on one
// InteropSystem may send/send_async from M application threads while a
// concurrent transport (transport::AsyncTransport) delivers inbound
// requests on its workers; the stores underneath (SymbolTable,
// TypeRegistry, ConformanceCache, Domain, AssemblyHub) are sharded or
// guarded, protocol stats are atomic, and event dispatch is serialized
// per runtime (handlers for one runtime never run concurrently with each
// other, and subscribe/unsubscribe may race deliveries). Configuration
// stays single-threaded: create runtimes, publish assemblies and install
// the initial subscriptions before the traffic threads start.
//
// One rule follows from serialized dispatch: an event handler must not
// perform a *synchronous* send to a runtime whose handlers may
// synchronously send back — on a concurrent transport that is a classic
// ABBA deadlock (each dispatch lock held while waiting for the other's).
// Handlers that need to originate traffic use send_async, which only
// enqueues. Under the single-threaded SimNetwork, synchronous replies
// from handlers remain safe. See docs/ARCHITECTURE.md for the per-class
// contract and docs/API.md for the AsyncTransport lifetime rules.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/errors.hpp"
#include "core/expected.hpp"
#include "core/type_handle.hpp"
#include "remoting/remoting.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/transport.hpp"

namespace pti::core {

class InteropSystem;
class InteropRuntime;

/// RAII ownership of one registered event handler. Returned by the
/// handle-based subscribe(); destroying (or unsubscribe()-ing) the token
/// deregisters the handler. release() detaches the token instead, leaving
/// the handler registered for the runtime's lifetime (the v1 semantics).
/// A Subscription must not outlive the runtime that issued it.
class Subscription {
 public:
  Subscription() noexcept = default;
  Subscription(Subscription&& other) noexcept
      : runtime_(std::exchange(other.runtime_, nullptr)),
        interest_(other.interest_),
        token_(other.token_) {}
  Subscription& operator=(Subscription&& other) noexcept;
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;
  ~Subscription() { unsubscribe(); }

  /// True while the handler is registered and owned by this token.
  [[nodiscard]] bool active() const noexcept { return runtime_ != nullptr; }

  /// Deregisters the handler now. Safe to call repeatedly, and safe from
  /// inside a handler (removal is deferred until the dispatch unwinds).
  void unsubscribe() noexcept;

  /// Detaches without deregistering: the handler stays installed for the
  /// runtime's lifetime and this token becomes inactive.
  void release() noexcept { runtime_ = nullptr; }

  /// Interned id of the subscribed interest (invalid when inactive).
  [[nodiscard]] util::InternedName interest() const noexcept {
    return runtime_ != nullptr ? interest_ : util::InternedName{};
  }

 private:
  friend class InteropRuntime;
  Subscription(InteropRuntime* runtime, util::InternedName interest,
               std::uint64_t token) noexcept
      : runtime_(runtime), interest_(interest), token_(token) {}

  InteropRuntime* runtime_ = nullptr;
  util::InternedName interest_{};
  std::uint64_t token_ = 0;
};

class InteropRuntime {
 public:
  InteropRuntime(std::string name, transport::Transport& network,
                 std::shared_ptr<transport::AssemblyHub> hub,
                 transport::PeerConfig config = {});
  ~InteropRuntime();
  InteropRuntime(const InteropRuntime&) = delete;
  InteropRuntime& operator=(const InteropRuntime&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return peer_.name(); }

  // --- types & code -------------------------------------------------------
  /// Loads an assembly locally and makes it downloadable by other peers.
  /// Returns a handle per contained type, in the assembly's order.
  std::vector<TypeHandle> publish_assembly(
      std::shared_ptr<const reflect::Assembly> assembly);
  [[nodiscard]] Expected<std::vector<TypeHandle>> try_publish_assembly(
      std::shared_ptr<const reflect::Assembly> assembly);

  /// Resolves a (possibly unqualified) type name once; the returned handle
  /// makes every later call on it string-free. Invalid handle when the
  /// name is unknown — this is the non-throwing lookup.
  [[nodiscard]] TypeHandle type(std::string_view name) noexcept;
  /// type() reporting ErrorCode::UnknownType instead of an invalid handle.
  [[nodiscard]] Expected<TypeHandle> try_type(std::string_view name);

  [[nodiscard]] reflect::Domain& domain() noexcept { return peer_.domain(); }

  // --- object lifecycle ----------------------------------------------------
  /// Instantiates a locally loaded type.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> make(TypeHandle type,
                                                         reflect::Args args = {});
  [[nodiscard]] std::shared_ptr<reflect::DynObject> make(std::string_view type_name,
                                                         reflect::Args args = {});
  [[nodiscard]] Expected<std::shared_ptr<reflect::DynObject>> try_make(
      TypeHandle type, reflect::Args args = {});
  [[nodiscard]] Expected<std::shared_ptr<reflect::DynObject>> try_make(
      std::string_view type_name, reflect::Args args = {});

  /// Universal invocation (direct, dynamic proxy or remote reference).
  reflect::Value call(const std::shared_ptr<reflect::DynObject>& object,
                      std::string_view method_name, reflect::Args args = {});
  [[nodiscard]] Expected<reflect::Value> try_call(
      const std::shared_ptr<reflect::DynObject>& object, std::string_view method_name,
      reflect::Args args = {});

  /// Adapts an object to a locally known target type (possibly a proxy).
  /// Throws proxy::NonConformantError if the types do not conform.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> adapt(
      const std::shared_ptr<reflect::DynObject>& object, TypeHandle target_type);
  [[nodiscard]] std::shared_ptr<reflect::DynObject> adapt(
      const std::shared_ptr<reflect::DynObject>& object, std::string_view target_type);
  [[nodiscard]] Expected<std::shared_ptr<reflect::DynObject>> try_adapt(
      const std::shared_ptr<reflect::DynObject>& object, TypeHandle target_type);
  [[nodiscard]] Expected<std::shared_ptr<reflect::DynObject>> try_adapt(
      const std::shared_ptr<reflect::DynObject>& object, std::string_view target_type);

  // --- conformance ----------------------------------------------------------
  /// Conformance query between two locally known types. The handle form is
  /// the steady-state path: on a cache hit it is allocation-free up to the
  /// returned CheckResult. Defined inline so the cached path costs exactly
  /// the checker-level check (no extra call frame).
  [[nodiscard]] conform::CheckResult check_conformance(TypeHandle source,
                                                       TypeHandle target) {
    return peer_.checker().check(source.description(), target.description());
  }
  [[nodiscard]] conform::CheckResult check_conformance(std::string_view source_type,
                                                       std::string_view target_type);
  [[nodiscard]] Expected<conform::CheckResult> try_check_conformance(TypeHandle source,
                                                                     TypeHandle target);

  /// Verdict-only query — the cheapest entry point (no CheckResult is
  /// materialized; zero allocations on a cache hit). Invalid handles are
  /// simply non-conformant.
  [[nodiscard]] bool conforms(TypeHandle source, TypeHandle target) {
    if (!source || !target) return false;
    return peer_.checker().conforms(*source.get(), *target.get());
  }

  using HandlePair = std::pair<TypeHandle, TypeHandle>;
  /// Batched verdict-only checks: probes the conformance cache for all
  /// pairs shard-aware (hashes first, prefetches, then probes), amortizing
  /// cache-shard traffic; misses fall back to full checks. `verdicts`
  /// must be at least pairs.size() long. Zero allocations when all pairs
  /// are cached.
  void check_conformance(std::span<const HandlePair> pairs, std::span<bool> verdicts);
  [[nodiscard]] std::vector<bool> check_conformance(std::span<const HandlePair> pairs);

  // --- pass-by-value exchange ----------------------------------------------
  using EventHandler = std::function<void(const transport::DeliveredObject&)>;
  /// Declares an interest in a local type and registers a callback fired
  /// for every delivered object that conformed to it. The returned token
  /// deregisters the handler on destruction (RAII) or unsubscribe().
  [[nodiscard]] Subscription subscribe(TypeHandle interest, EventHandler handler);
  [[nodiscard]] Expected<Subscription> try_subscribe(TypeHandle interest,
                                                     EventHandler handler);
  /// v1 shim: resolves the name and installs the handler for the runtime's
  /// lifetime (no token).
  void subscribe(std::string_view type_name, EventHandler handler);

  /// Sends an object graph to another runtime (pass-by-value).
  transport::PushAck send(std::string_view to,
                          const std::shared_ptr<reflect::DynObject>& object);
  [[nodiscard]] Expected<transport::PushAck> try_send(
      std::string_view to, const std::shared_ptr<reflect::DynObject>& object);

  /// Non-blocking send over Transport::send_async: the future carries the
  /// PushAck or the exception send() would have thrown. On a transport
  /// without its own queueing (SimNetwork) the exchange completes
  /// synchronously before this returns.
  [[nodiscard]] std::future<transport::PushAck> send_async(
      std::string_view to, const std::shared_ptr<reflect::DynObject>& object);

  // --- pass-by-reference ----------------------------------------------------
  /// Exports an object for remote invocation; returns its object id.
  std::uint64_t export_object(std::shared_ptr<reflect::DynObject> object);
  [[nodiscard]] Expected<std::uint64_t> try_export_object(
      std::shared_ptr<reflect::DynObject> object);

  /// Imports a remote reference. The handle form requires the type to be
  /// locally known already (that is what the handle proves) and skips the
  /// description fetch; the string form fetches the description from the
  /// host if needed.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> import_remote(
      std::string_view host, std::uint64_t object_id, TypeHandle type);
  [[nodiscard]] std::shared_ptr<reflect::DynObject> import_remote(
      std::string_view host, std::uint64_t object_id, std::string_view type_name);
  [[nodiscard]] Expected<std::shared_ptr<reflect::DynObject>> try_import_remote(
      std::string_view host, std::uint64_t object_id, TypeHandle type);
  [[nodiscard]] Expected<std::shared_ptr<reflect::DynObject>> try_import_remote(
      std::string_view host, std::uint64_t object_id, std::string_view type_name);

  // --- internals, exposed for tests/benchmarks/applications ----------------
  [[nodiscard]] transport::Peer& peer() noexcept { return peer_; }
  [[nodiscard]] remoting::Remoting& remoting() noexcept { return remoting_; }
  [[nodiscard]] proxy::ProxyFactory& proxies() noexcept { return peer_.proxies(); }
  [[nodiscard]] conform::ConformanceChecker& checker() noexcept { return peer_.checker(); }
  [[nodiscard]] transport::ProtocolStats& stats() noexcept { return peer_.stats(); }

  /// Delivery entry point: fans a delivered object out to the handlers
  /// subscribed to its matched interest. Keyed on the interned interest id
  /// — no string folding, no allocations. Public so benchmarks and tests
  /// can drive dispatch without a network round trip.
  void dispatch(const transport::DeliveredObject& delivered);

  /// Handlers currently registered for an interest (tests/diagnostics).
  [[nodiscard]] std::size_t handler_count(TypeHandle interest) const noexcept;

 private:
  friend class Subscription;

  struct HandlerEntry {
    std::uint64_t token = 0;  ///< 0 marks an entry retired mid-dispatch
    EventHandler handler;
  };

  Subscription add_handler(util::InternedName interest, EventHandler handler);
  void remove_handler(util::InternedName interest, std::uint64_t token) noexcept;

  transport::Peer peer_;
  remoting::Remoting remoting_;
  /// Serializes dispatch and handler-table mutation. Recursive because
  /// handlers may subscribe/unsubscribe/dispatch reentrantly on the
  /// dispatching thread; concurrent deliveries from transport workers
  /// queue up behind each other (per-runtime dispatch is serialized).
  mutable std::recursive_mutex handlers_mutex_;
  /// Dispatch table: interned interest id -> handlers, in subscription
  /// order. std::list so registration from inside a handler never
  /// invalidates the iteration.
  std::unordered_map<util::InternedName, std::list<HandlerEntry>> handlers_;
  std::uint64_t next_token_ = 1;
  int dispatch_depth_ = 0;
  bool sweep_pending_ = false;
};

/// Owns the simulated universe: the transport, the assembly hub and the
/// runtimes attached to them.
class InteropSystem {
 public:
  /// A universe over the default deterministic SimNetwork.
  explicit InteropSystem(std::uint64_t seed = 42);
  /// A universe over a caller-supplied transport — the seam future
  /// async/multi-peer transports plug into.
  explicit InteropSystem(std::unique_ptr<transport::Transport> network);

  [[nodiscard]] transport::Transport& network() noexcept { return *network_; }
  [[nodiscard]] const std::shared_ptr<transport::AssemblyHub>& hub() const noexcept {
    return hub_;
  }

  InteropRuntime& create_runtime(std::string name, transport::PeerConfig config = {});
  [[nodiscard]] InteropRuntime* find(std::string_view name) noexcept;
  [[nodiscard]] std::vector<InteropRuntime*> runtimes();

 private:
  std::unique_ptr<transport::Transport> network_;
  std::shared_ptr<transport::AssemblyHub> hub_;
  /// Guards the runtime map (create_runtime may race find()/runtimes()).
  mutable std::shared_mutex runtimes_mutex_;
  std::map<std::string, std::unique_ptr<InteropRuntime>, util::ICaseLess> runtimes_;
};

}  // namespace pti::core
