// The public API of the library: InteropSystem (the simulated distributed
// universe) and InteropRuntime (one participant's middleware instance).
//
// This is the layer a downstream user programs against:
//
//   pti::core::InteropSystem system;
//   auto& alice = system.create_runtime("alice");
//   auto& bob   = system.create_runtime("bob");
//
//   alice.publish_assembly(team_a_assembly);          // types + code
//   bob.publish_assembly(team_b_assembly);
//
//   bob.subscribe("teamB.Person", [&](const auto& ev) {
//     // ev.adapted is usable as teamB.Person even though alice sent
//     // a teamA.Person — implicit structural conformance at work.
//     bob.call(ev.adapted, "getPersonName");
//   });
//
//   alice.send("bob", alice.make("teamA.Person", {Value("Alice")}));
//
// Everything underneath — hybrid envelopes, the optimistic transport
// protocol, on-demand description/code download, conformance checking and
// dynamic proxies — is the machinery of the paper, reachable through the
// accessors when finer control is needed.
//
// Thread safety: InteropSystem and InteropRuntime are single-threaded —
// drive one simulated universe from one thread. The stores underneath
// (SymbolTable, TypeRegistry, ConformanceCache) are themselves sharded
// and thread-safe (see docs/ARCHITECTURE.md for the per-class contract),
// so read-heavy work that bypasses the protocol — resolve() on a
// runtime's registry, conformance checks through a checker whose
// resolver is a plain TypeRegistry — may run on worker threads
// concurrently with each other; only the protocol/network layers must
// stay on the owning thread.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/errors.hpp"
#include "remoting/remoting.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"

namespace pti::core {

class InteropSystem;

class InteropRuntime {
 public:
  InteropRuntime(std::string name, transport::SimNetwork& network,
                 std::shared_ptr<transport::AssemblyHub> hub,
                 transport::PeerConfig config = {});
  InteropRuntime(const InteropRuntime&) = delete;
  InteropRuntime& operator=(const InteropRuntime&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return peer_.name(); }

  // --- types & code -------------------------------------------------------
  /// Loads an assembly locally and makes it downloadable by other peers.
  void publish_assembly(std::shared_ptr<const reflect::Assembly> assembly);
  [[nodiscard]] reflect::Domain& domain() noexcept { return peer_.domain(); }

  // --- object lifecycle ----------------------------------------------------
  /// Instantiates a locally loaded type.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> make(std::string_view type_name,
                                                         reflect::Args args = {});
  /// Universal invocation (direct, dynamic proxy or remote reference).
  reflect::Value call(const std::shared_ptr<reflect::DynObject>& object,
                      std::string_view method_name, reflect::Args args = {});
  /// Adapts an object to a locally known target type (possibly a proxy).
  /// Throws proxy::NonConformantError if the types do not conform.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> adapt(
      const std::shared_ptr<reflect::DynObject>& object, std::string_view target_type);
  /// Conformance query between two known type names.
  [[nodiscard]] conform::CheckResult check_conformance(std::string_view source_type,
                                                       std::string_view target_type);

  // --- pass-by-value exchange ----------------------------------------------
  using EventHandler = std::function<void(const transport::DeliveredObject&)>;
  /// Declares an interest in a local type and registers a callback fired
  /// for every delivered object that conformed to it.
  void subscribe(std::string_view type_name, EventHandler handler);
  /// Sends an object graph to another runtime (pass-by-value).
  transport::PushAck send(std::string_view to,
                          const std::shared_ptr<reflect::DynObject>& object);

  // --- pass-by-reference ----------------------------------------------------
  /// Exports an object for remote invocation; returns its object id.
  std::uint64_t export_object(std::shared_ptr<reflect::DynObject> object);
  /// Imports a remote reference (fetching the type description if needed).
  [[nodiscard]] std::shared_ptr<reflect::DynObject> import_remote(
      std::string_view host, std::uint64_t object_id, std::string_view type_name);

  // --- internals, exposed for tests/benchmarks/applications ----------------
  [[nodiscard]] transport::Peer& peer() noexcept { return peer_; }
  [[nodiscard]] remoting::Remoting& remoting() noexcept { return remoting_; }
  [[nodiscard]] proxy::ProxyFactory& proxies() noexcept { return peer_.proxies(); }
  [[nodiscard]] conform::ConformanceChecker& checker() noexcept { return peer_.checker(); }
  [[nodiscard]] transport::ProtocolStats& stats() noexcept { return peer_.stats(); }

 private:
  transport::Peer peer_;
  remoting::Remoting remoting_;
  std::multimap<std::string, EventHandler, util::ICaseLess> handlers_;
};

/// Owns the simulated universe: the network, the assembly hub and the
/// runtimes attached to them.
class InteropSystem {
 public:
  explicit InteropSystem(std::uint64_t seed = 42);

  [[nodiscard]] transport::SimNetwork& network() noexcept { return network_; }
  [[nodiscard]] const std::shared_ptr<transport::AssemblyHub>& hub() const noexcept {
    return hub_;
  }

  InteropRuntime& create_runtime(std::string name, transport::PeerConfig config = {});
  [[nodiscard]] InteropRuntime* find(std::string_view name) noexcept;
  [[nodiscard]] std::vector<InteropRuntime*> runtimes();

 private:
  transport::SimNetwork network_;
  std::shared_ptr<transport::AssemblyHub> hub_;
  std::map<std::string, std::unique_ptr<InteropRuntime>, util::ICaseLess> runtimes_;
};

}  // namespace pti::core
