// TypeHandle — resolved, interned identity of a type inside one runtime.
//
// The v1 API took type names as strings on every call, so a steady-state
// caller paid a registry lookup (symbol-table probe + shard map probe) per
// make/adapt/check/subscribe even though the name resolves to the same
// description every time. A TypeHandle is that resolution done once: it
// wraps the interned qualified-name id and the resolved description
// pointer, so every later call is pointer/integer work only.
//
// Lifetime: handles are created by InteropRuntime::type() /
// publish_assembly() and are valid for the lifetime of the runtime that
// issued them (descriptions live in the runtime's append-only registry and
// are never moved or erased). A handle must only be passed back to the
// runtime it came from — runtimes have disjoint registries, and a handle
// encodes a pointer into one of them. Default-constructed handles are
// invalid; every API entry point checks and reports ErrorCode::InvalidHandle.
#pragma once

#include <string>

#include "reflect/reflect_error.hpp"
#include "reflect/type_description.hpp"
#include "util/interning.hpp"

namespace pti::core {

class InteropRuntime;

class TypeHandle {
 public:
  /// An invalid handle ("type unknown").
  constexpr TypeHandle() noexcept = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return description_ != nullptr; }
  [[nodiscard]] explicit constexpr operator bool() const noexcept { return valid(); }

  /// Interned id of the case-folded qualified name. Only meaningful when
  /// valid().
  [[nodiscard]] constexpr util::InternedName id() const noexcept { return id_; }

  /// The resolved description; nullptr when invalid.
  [[nodiscard]] constexpr const reflect::TypeDescription* get() const noexcept {
    return description_;
  }

  /// The resolved description. Throws ReflectError on an invalid handle.
  [[nodiscard]] const reflect::TypeDescription& description() const {
    if (description_ == nullptr) {
      throw reflect::ReflectError("dereferencing an invalid TypeHandle");
    }
    return *description_;
  }

  /// Qualified name of the referenced type ("ns.Name"). Throws on invalid.
  [[nodiscard]] std::string qualified_name() const {
    return description().qualified_name();
  }

  /// Two handles are equal when they reference the same description in the
  /// same runtime (ids alone can collide across runtimes: both sides may
  /// intern the same spelling).
  [[nodiscard]] friend constexpr bool operator==(const TypeHandle& a,
                                                 const TypeHandle& b) noexcept {
    return a.description_ == b.description_;
  }

 private:
  friend class InteropRuntime;
  constexpr TypeHandle(util::InternedName id,
                       const reflect::TypeDescription* description) noexcept
      : id_(id), description_(description) {}

  util::InternedName id_{};
  const reflect::TypeDescription* description_ = nullptr;
};

}  // namespace pti::core
