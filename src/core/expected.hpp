// Expected<T> — the non-throwing result channel of the v2 public API.
//
// Every fallible InteropRuntime call has a `try_` variant returning
// Expected<T, core::Error> instead of throwing; the throwing overloads are
// thin wrappers that raise() the error (rethrowing the original library
// exception when one was caught, so existing catch sites keep working
// unchanged). An Error classifies the failure into an ErrorCode a caller
// can branch on without string matching, keeps the human-readable message,
// and retains the original exception for faithful rethrow.
//
// This is deliberately a minimal std::expected stand-in (the toolchain is
// C++20): value-or-error variant storage, [[nodiscard]] everywhere, and
// value() that rethrows the captured failure instead of a generic
// bad_expected_access — which makes `return try_x(...).value();` an exact
// reimplementation of the old throwing behavior.
#pragma once

#include <exception>
#include <string>
#include <utility>
#include <variant>

#include "core/errors.hpp"

namespace pti::core {

/// Coarse classification of a failed public-API call.
enum class ErrorCode : std::uint8_t {
  UnknownType,    ///< name does not resolve in the local registry
  UnknownPeer,    ///< recipient is not attached to the transport
  InvalidHandle,  ///< an invalid (default-constructed) TypeHandle was passed
  NonConformant,  ///< adaptation refused: source does not conform to target
  Reflection,     ///< dynamic type-system misuse (missing member, bad args)
  Conformance,    ///< conformance machinery failure
  Serialization,  ///< malformed payloads or unknown encodings
  Network,        ///< transport-level failure (drops, unreachable peers)
  Protocol,       ///< optimistic-protocol failure
  Remoting,       ///< failed remote invocation or dangling reference
  ResourceExhausted,  ///< a quota or hard cap was hit (peer budget, table cap)
  Internal,       ///< anything else
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::UnknownType: return "unknown-type";
    case ErrorCode::UnknownPeer: return "unknown-peer";
    case ErrorCode::InvalidHandle: return "invalid-handle";
    case ErrorCode::NonConformant: return "non-conformant";
    case ErrorCode::Reflection: return "reflection";
    case ErrorCode::Conformance: return "conformance";
    case ErrorCode::Serialization: return "serialization";
    case ErrorCode::Network: return "network";
    case ErrorCode::Protocol: return "protocol";
    case ErrorCode::Remoting: return "remoting";
    case ErrorCode::ResourceExhausted: return "resource-exhausted";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

/// One failed call: classification + message (+ the original exception when
/// the failure surfaced as a throw from a lower layer).
struct Error {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  std::exception_ptr cause;  ///< null when synthesized without a throw

  /// Rethrows the original exception when one was captured; otherwise
  /// throws pti::Error(message). This is what keeps the throwing overloads
  /// byte-for-byte compatible with the pre-handle API.
  [[noreturn]] void raise() const {
    if (cause) std::rethrow_exception(cause);
    throw pti::Error(message);
  }

  /// Classifies the in-flight exception (call from a catch block only).
  [[nodiscard]] static Error from_current_exception() noexcept {
    const std::exception_ptr cause = std::current_exception();
    try {
      throw;
    } catch (const proxy::NonConformantError& e) {
      return Error{ErrorCode::NonConformant, e.what(), cause};
    } catch (const proxy::ProxyError& e) {
      return Error{ErrorCode::Reflection, e.what(), cause};
    } catch (const reflect::ReflectError& e) {
      return Error{ErrorCode::Reflection, e.what(), cause};
    } catch (const conform::ConformError& e) {
      return Error{ErrorCode::Conformance, e.what(), cause};
    } catch (const serial::SerialError& e) {
      return Error{ErrorCode::Serialization, e.what(), cause};
    } catch (const xml::XmlError& e) {
      return Error{ErrorCode::Serialization, e.what(), cause};
    } catch (const transport::NetworkError& e) {
      return Error{ErrorCode::Network, e.what(), cause};
    } catch (const transport::ProtocolError& e) {
      return Error{ErrorCode::Protocol, e.what(), cause};
    } catch (const transport::TransportError& e) {
      return Error{ErrorCode::Network, e.what(), cause};
    } catch (const remoting::RemotingError& e) {
      return Error{ErrorCode::Remoting, e.what(), cause};
    } catch (const pti::ResourceExhaustedError& e) {
      return Error{ErrorCode::ResourceExhausted, e.what(), cause};
    } catch (const std::exception& e) {
      return Error{ErrorCode::Internal, e.what(), cause};
    } catch (...) {
      return Error{ErrorCode::Internal, "unknown failure", cause};
    }
  }
};

/// Value-or-Error result of a `try_` call.
template <class T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error error) : storage_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool has_value() const noexcept { return storage_.index() == 0; }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  /// The value, or raise()s the error (rethrowing the original exception).
  [[nodiscard]] T& value() & {
    if (!has_value()) error().raise();
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    if (!has_value()) error().raise();
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    if (!has_value()) error().raise();
    return std::get<0>(std::move(storage_));
  }

  /// Unchecked access; only meaningful when has_value().
  [[nodiscard]] T& operator*() noexcept { return std::get<0>(storage_); }
  [[nodiscard]] const T& operator*() const noexcept { return std::get<0>(storage_); }
  [[nodiscard]] T* operator->() noexcept { return &std::get<0>(storage_); }
  [[nodiscard]] const T* operator->() const noexcept { return &std::get<0>(storage_); }

  template <class U>
  [[nodiscard]] T value_or(U&& fallback) const& {
    return has_value() ? std::get<0>(storage_) : static_cast<T>(std::forward<U>(fallback));
  }

  /// Only meaningful when !has_value().
  [[nodiscard]] const Error& error() const noexcept { return std::get<1>(storage_); }

 private:
  std::variant<T, Error> storage_;
};

/// Expected for calls that produce no value (e.g. try_unsubscribe).
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() noexcept = default;
  Expected(Error error) : error_(std::move(error)), failed_(true) {}

  [[nodiscard]] bool has_value() const noexcept { return !failed_; }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  void value() const {
    if (failed_) error_.raise();
  }

  [[nodiscard]] const Error& error() const noexcept { return error_; }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace pti::core
