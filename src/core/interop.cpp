#include "core/interop.hpp"

#include <algorithm>
#include <array>

namespace pti::core {

using reflect::DynObject;
using reflect::Value;

namespace {

/// Error for a default-constructed / foreign handle, carrying the same
/// exception the throwing path would raise.
[[nodiscard]] Error invalid_handle_error(const char* call) {
  std::string message = std::string("invalid TypeHandle passed to ") + call;
  return Error{ErrorCode::InvalidHandle, message,
               std::make_exception_ptr(reflect::ReflectError(std::move(message)))};
}

[[nodiscard]] Error unknown_type_error(std::string_view type_name,
                                       const std::string& runtime) {
  std::string message =
      "type '" + std::string(type_name) + "' is not known to runtime '" + runtime + "'";
  return Error{ErrorCode::UnknownType, message,
               std::make_exception_ptr(reflect::ReflectError(std::move(message)))};
}

}  // namespace

// --- Subscription ------------------------------------------------------------

Subscription& Subscription::operator=(Subscription&& other) noexcept {
  if (this != &other) {
    unsubscribe();
    runtime_ = std::exchange(other.runtime_, nullptr);
    interest_ = other.interest_;
    token_ = other.token_;
  }
  return *this;
}

void Subscription::unsubscribe() noexcept {
  if (runtime_ != nullptr) {
    runtime_->remove_handler(interest_, token_);
    runtime_ = nullptr;
  }
}

// --- InteropRuntime ----------------------------------------------------------

InteropRuntime::InteropRuntime(std::string name, transport::Transport& network,
                               std::shared_ptr<transport::AssemblyHub> hub,
                               transport::PeerConfig config)
    : peer_(std::move(name), network, std::move(hub), std::move(config)),
      remoting_(peer_) {
  peer_.set_delivery_handler(
      [this](const transport::DeliveredObject& delivered) { dispatch(delivered); });
}

InteropRuntime::~InteropRuntime() {
  // Quiesce inbound delivery FIRST: on a concurrent transport a worker may
  // be inside dispatch() — holding handlers_mutex_, iterating handlers_ —
  // right now. detach() blocks until in-flight executions of the peer's
  // handler finish and no new ones begin. peer_'s own destructor would do
  // the same, but only after the members declared below it (the dispatch
  // state) were already destroyed — too late.
  peer_.network().detach(peer_.name());
  // Then drain the dispatch table before member destruction: a handler
  // closure may own a Subscription whose destructor reenters
  // remove_handler, which must find a valid (now empty) map — not one
  // mid-destruction.
  auto drained = std::move(handlers_);
  handlers_.clear();
  drained.clear();  // closures destruct here
}

// --- types & code ------------------------------------------------------------

std::vector<TypeHandle> InteropRuntime::publish_assembly(
    std::shared_ptr<const reflect::Assembly> assembly) {
  return std::move(try_publish_assembly(std::move(assembly)).value());
}

Expected<std::vector<TypeHandle>> InteropRuntime::try_publish_assembly(
    std::shared_ptr<const reflect::Assembly> assembly) {
  try {
    const std::shared_ptr<const reflect::Assembly> kept = assembly;
    const std::vector<const reflect::TypeDescription*> registered =
        peer_.host_assembly(std::move(assembly));
    std::vector<TypeHandle> handles;
    handles.reserve(kept->types().size());
    if (registered.size() == kept->types().size()) {
      // Fresh load: registration already produced every description.
      for (const reflect::TypeDescription* d : registered) {
        handles.push_back(TypeHandle{d->name_id(), d});
      }
    } else {
      // Idempotent re-publish: resolve the already-registered names. A
      // *different* assembly reusing a loaded assembly's name can carry
      // types the registry never saw — report that instead of silently
      // handing out invalid handles.
      for (const auto& native : kept->types()) {
        const TypeHandle handle = type(native->qualified_name());
        if (!handle) {
          const std::string message = "assembly '" + kept->name() +
                                      "' was already loaded without type '" +
                                      native->qualified_name() +
                                      "' (different assembly, same name?)";
          return Error{ErrorCode::UnknownType, message,
                       std::make_exception_ptr(reflect::ReflectError(message))};
        }
        handles.push_back(handle);
      }
    }
    return handles;
  } catch (...) {
    return Error::from_current_exception();
  }
}

TypeHandle InteropRuntime::type(std::string_view name) noexcept {
  const reflect::TypeDescription* d = peer_.domain().registry().find(name);
  return d == nullptr ? TypeHandle{} : TypeHandle{d->name_id(), d};
}

Expected<TypeHandle> InteropRuntime::try_type(std::string_view name) {
  const TypeHandle handle = type(name);
  if (!handle) return unknown_type_error(name, peer_.name());
  return handle;
}

// --- object lifecycle --------------------------------------------------------

std::shared_ptr<DynObject> InteropRuntime::make(TypeHandle type, reflect::Args args) {
  return peer_.domain().instantiate(type.description(), args);
}

std::shared_ptr<DynObject> InteropRuntime::make(std::string_view type_name,
                                                reflect::Args args) {
  const TypeHandle handle = type(type_name);
  // Unknown names fall through to the domain so the error message (and
  // exception type) of the v1 API is preserved exactly.
  if (!handle) return peer_.domain().instantiate(type_name, args);
  return make(handle, args);
}

Expected<std::shared_ptr<DynObject>> InteropRuntime::try_make(TypeHandle type,
                                                              reflect::Args args) {
  if (!type) return invalid_handle_error("make");
  try {
    return make(type, args);
  } catch (...) {
    return Error::from_current_exception();
  }
}

Expected<std::shared_ptr<DynObject>> InteropRuntime::try_make(std::string_view type_name,
                                                              reflect::Args args) {
  const TypeHandle handle = type(type_name);
  if (!handle) return unknown_type_error(type_name, peer_.name());
  return try_make(handle, args);
}

Value InteropRuntime::call(const std::shared_ptr<DynObject>& object,
                           std::string_view method_name, reflect::Args args) {
  return peer_.proxies().invoke(object, method_name, args);
}

Expected<Value> InteropRuntime::try_call(const std::shared_ptr<DynObject>& object,
                                         std::string_view method_name,
                                         reflect::Args args) {
  try {
    return call(object, method_name, args);
  } catch (...) {
    return Error::from_current_exception();
  }
}

std::shared_ptr<DynObject> InteropRuntime::adapt(const std::shared_ptr<DynObject>& object,
                                                 TypeHandle target_type) {
  return peer_.proxies().wrap(object, target_type.description());
}

std::shared_ptr<DynObject> InteropRuntime::adapt(const std::shared_ptr<DynObject>& object,
                                                 std::string_view target_type) {
  return peer_.proxies().wrap(object, target_type);
}

Expected<std::shared_ptr<DynObject>> InteropRuntime::try_adapt(
    const std::shared_ptr<DynObject>& object, TypeHandle target_type) {
  if (!target_type) return invalid_handle_error("adapt");
  try {
    return adapt(object, target_type);
  } catch (...) {
    return Error::from_current_exception();
  }
}

Expected<std::shared_ptr<DynObject>> InteropRuntime::try_adapt(
    const std::shared_ptr<DynObject>& object, std::string_view target_type) {
  const TypeHandle handle = type(target_type);
  if (!handle) return unknown_type_error(target_type, peer_.name());
  return try_adapt(object, handle);
}

// --- conformance -------------------------------------------------------------

conform::CheckResult InteropRuntime::check_conformance(std::string_view source_type,
                                                       std::string_view target_type) {
  return peer_.checker().check(source_type, target_type);
}

Expected<conform::CheckResult> InteropRuntime::try_check_conformance(TypeHandle source,
                                                                     TypeHandle target) {
  if (!source || !target) return invalid_handle_error("check_conformance");
  try {
    return check_conformance(source, target);
  } catch (...) {
    return Error::from_current_exception();
  }
}

void InteropRuntime::check_conformance(std::span<const HandlePair> pairs,
                                       std::span<bool> verdicts) {
  // Translate handles to description pairs in fixed-size stack blocks, so
  // arbitrarily large batches stay allocation-free end to end.
  constexpr std::size_t kBlock = 64;
  std::array<conform::ConformanceChecker::DescPair, kBlock> block;
  for (std::size_t base = 0; base < pairs.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, pairs.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      block[i] = {pairs[base + i].first.get(), pairs[base + i].second.get()};
    }
    peer_.checker().conforms_batch(std::span<const conform::ConformanceChecker::DescPair>(
                                       block.data(), n),
                                   verdicts.subspan(base, n));
  }
}

std::vector<bool> InteropRuntime::check_conformance(std::span<const HandlePair> pairs) {
  // std::vector<bool> packs bits, so it cannot back a span<bool>; run the
  // batch through a stack block per chunk and flush into the result.
  std::vector<bool> verdicts(pairs.size());
  constexpr std::size_t kBlock = 64;
  std::array<bool, kBlock> block;
  for (std::size_t base = 0; base < pairs.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, pairs.size() - base);
    check_conformance(pairs.subspan(base, n), std::span<bool>(block.data(), n));
    for (std::size_t i = 0; i < n; ++i) verdicts[base + i] = block[i];
  }
  return verdicts;
}

// --- pass-by-value exchange --------------------------------------------------

Subscription InteropRuntime::subscribe(TypeHandle interest, EventHandler handler) {
  return std::move(try_subscribe(interest, std::move(handler)).value());
}

Expected<Subscription> InteropRuntime::try_subscribe(TypeHandle interest,
                                                     EventHandler handler) {
  if (!interest) return invalid_handle_error("subscribe");
  if (!handler) {
    return Error{ErrorCode::Internal, "subscribe requires a non-null handler",
                 std::make_exception_ptr(
                     transport::ProtocolError("subscribe requires a non-null handler"))};
  }
  try {
    peer_.add_interest(interest.description());
    return add_handler(interest.id(), std::move(handler));
  } catch (...) {
    return Error::from_current_exception();
  }
}

void InteropRuntime::subscribe(std::string_view type_name, EventHandler handler) {
  // v1 semantics: throws ProtocolError for unknown names, handler lives as
  // long as the runtime.
  const util::InternedName id = peer_.add_interest(type_name);
  add_handler(id, std::move(handler)).release();
}

transport::PushAck InteropRuntime::send(std::string_view to,
                                        const std::shared_ptr<DynObject>& object) {
  return try_send(to, object).value();
}

std::future<transport::PushAck> InteropRuntime::send_async(
    std::string_view to, const std::shared_ptr<DynObject>& object) {
  return peer_.send_object_async(to, object);
}

Expected<transport::PushAck> InteropRuntime::try_send(
    std::string_view to, const std::shared_ptr<DynObject>& object) {
  try {
    return peer_.send_object(to, object);
  } catch (...) {
    Error error = Error::from_current_exception();
    // Refine the transport's "unknown recipient" failure into the precise
    // code without second-guessing its message or the v1 error ordering.
    if (error.code == ErrorCode::Network && !peer_.network().is_attached(to)) {
      error.code = ErrorCode::UnknownPeer;
    }
    return error;
  }
}

// --- pass-by-reference -------------------------------------------------------

std::uint64_t InteropRuntime::export_object(std::shared_ptr<DynObject> object) {
  return remoting_.export_object(std::move(object));
}

Expected<std::uint64_t> InteropRuntime::try_export_object(
    std::shared_ptr<DynObject> object) {
  try {
    return export_object(std::move(object));
  } catch (...) {
    return Error::from_current_exception();
  }
}

std::shared_ptr<DynObject> InteropRuntime::import_remote(std::string_view host,
                                                         std::uint64_t object_id,
                                                         TypeHandle type) {
  return remoting_.import_ref(host, object_id, type.description());
}

std::shared_ptr<DynObject> InteropRuntime::import_remote(std::string_view host,
                                                         std::uint64_t object_id,
                                                         std::string_view type_name) {
  return remoting_.import_ref(host, object_id, type_name);
}

Expected<std::shared_ptr<DynObject>> InteropRuntime::try_import_remote(
    std::string_view host, std::uint64_t object_id, TypeHandle type) {
  if (!type) return invalid_handle_error("import_remote");
  try {
    return import_remote(host, object_id, type);
  } catch (...) {
    return Error::from_current_exception();
  }
}

Expected<std::shared_ptr<DynObject>> InteropRuntime::try_import_remote(
    std::string_view host, std::uint64_t object_id, std::string_view type_name) {
  try {
    return import_remote(host, object_id, type_name);
  } catch (...) {
    return Error::from_current_exception();
  }
}

// --- dispatch ----------------------------------------------------------------

void InteropRuntime::dispatch(const transport::DeliveredObject& delivered) {
  // Per-runtime dispatch is serialized: transport workers delivering
  // concurrently queue here, and a dispatching thread may reenter (the
  // mutex is recursive), which keeps the depth-guarded sweep logic below
  // effectively single-threaded.
  std::scoped_lock dispatch_lock(handlers_mutex_);
  const auto it = handlers_.find(delivered.interest_id);
  if (it == handlers_.end()) return;
  // Depth-guarded iteration: handlers may subscribe (std::list append, no
  // invalidation) or unsubscribe (deferred via token=0) reentrantly.
  struct DepthGuard {
    InteropRuntime& runtime;
    ~DepthGuard() {
      if (--runtime.dispatch_depth_ != 0 || !runtime.sweep_pending_) return;
      runtime.sweep_pending_ = false;
      // Splice retired entries aside and erase empty map nodes FIRST, then
      // let the closures destruct. A destructing closure may own a
      // Subscription whose destructor reenters remove_handler; it must see
      // a consistent map, not the node this sweep is iterating.
      std::list<HandlerEntry> retired;
      for (auto map_it = runtime.handlers_.begin(); map_it != runtime.handlers_.end();) {
        auto& list = map_it->second;
        for (auto entry_it = list.begin(); entry_it != list.end();) {
          const auto next = std::next(entry_it);
          if (entry_it->token == 0) retired.splice(retired.end(), list, entry_it);
          entry_it = next;
        }
        map_it = list.empty() ? runtime.handlers_.erase(map_it) : ++map_it;
      }
      // `retired` destructs here, outside any container traversal.
    }
  };
  ++dispatch_depth_;
  DepthGuard guard{*this};
  // Iterate a size snapshot: handlers subscribed during this dispatch are
  // appended at the tail and must not see the in-flight event (and a
  // self-resubscribing handler must not loop the walk forever).
  std::size_t remaining = it->second.size();
  for (auto entry_it = it->second.begin(); remaining > 0; ++entry_it, --remaining) {
    if (entry_it->token != 0) entry_it->handler(delivered);
  }
}

std::size_t InteropRuntime::handler_count(TypeHandle interest) const noexcept {
  if (!interest) return 0;
  std::scoped_lock lock(handlers_mutex_);
  const auto it = handlers_.find(interest.id());
  if (it == handlers_.end()) return 0;
  return static_cast<std::size_t>(std::count_if(
      it->second.begin(), it->second.end(),
      [](const HandlerEntry& entry) { return entry.token != 0; }));
}

Subscription InteropRuntime::add_handler(util::InternedName interest,
                                         EventHandler handler) {
  std::scoped_lock lock(handlers_mutex_);
  const std::uint64_t token = next_token_++;
  handlers_[interest].push_back(HandlerEntry{token, std::move(handler)});
  return Subscription{this, interest, token};
}

void InteropRuntime::remove_handler(util::InternedName interest,
                                    std::uint64_t token) noexcept {
  std::scoped_lock lock(handlers_mutex_);
  const auto it = handlers_.find(interest);
  if (it == handlers_.end()) return;
  for (auto entry_it = it->second.begin(); entry_it != it->second.end(); ++entry_it) {
    if (entry_it->token == token) {
      if (dispatch_depth_ > 0) {
        // Mid-dispatch: retire in place, erase after the unwind.
        entry_it->token = 0;
        sweep_pending_ = true;
      } else {
        // Splice out, finish the map mutation, THEN destroy the closure:
        // its destructor may own Subscriptions and reenter this function.
        std::list<HandlerEntry> retired;
        retired.splice(retired.end(), it->second, entry_it);
        if (it->second.empty()) handlers_.erase(it);
      }
      return;
    }
  }
}

// --- InteropSystem -----------------------------------------------------------

InteropSystem::InteropSystem(std::uint64_t seed)
    : network_(transport::make_sim_network(seed)),
      hub_(std::make_shared<transport::AssemblyHub>()) {}

InteropSystem::InteropSystem(std::unique_ptr<transport::Transport> network)
    : network_(std::move(network)), hub_(std::make_shared<transport::AssemblyHub>()) {
  if (!network_) throw transport::TransportError("InteropSystem requires a transport");
}

InteropRuntime& InteropSystem::create_runtime(std::string name,
                                              transport::PeerConfig config) {
  // Duplicate names are checked here, not just left to the transport's
  // attach (which also throws): a third-party Transport that tolerated
  // double-attach would otherwise let the loser of the emplace detach the
  // ORIGINAL runtime's live endpoint when its fresh runtime is destroyed.
  {
    std::shared_lock lock(runtimes_mutex_);
    if (runtimes_.contains(name)) {
      throw transport::TransportError("runtime '" + name + "' already exists");
    }
  }
  // Built outside the map lock: the constructor attaches to the transport,
  // which has its own synchronization.
  auto runtime =
      std::make_unique<InteropRuntime>(name, *network_, hub_, std::move(config));
  std::unique_lock lock(runtimes_mutex_);
  const auto [it, inserted] = runtimes_.try_emplace(std::move(name), std::move(runtime));
  if (!inserted) {
    // Two racing create_runtime("same") calls: with a conforming transport
    // the second constructor already threw at attach; refuse here too.
    throw transport::TransportError("runtime '" + it->first + "' already exists");
  }
  return *it->second;
}

InteropRuntime* InteropSystem::find(std::string_view name) noexcept {
  std::shared_lock lock(runtimes_mutex_);
  const auto it = runtimes_.find(name);
  return it == runtimes_.end() ? nullptr : it->second.get();
}

std::vector<InteropRuntime*> InteropSystem::runtimes() {
  std::shared_lock lock(runtimes_mutex_);
  std::vector<InteropRuntime*> out;
  out.reserve(runtimes_.size());
  for (auto& [name, rt] : runtimes_) out.push_back(rt.get());
  return out;
}

}  // namespace pti::core
