#include "core/interop.hpp"

namespace pti::core {

using reflect::DynObject;
using reflect::Value;

InteropRuntime::InteropRuntime(std::string name, transport::SimNetwork& network,
                               std::shared_ptr<transport::AssemblyHub> hub,
                               transport::PeerConfig config)
    : peer_(std::move(name), network, std::move(hub), std::move(config)),
      remoting_(peer_) {
  peer_.set_delivery_handler([this](const transport::DeliveredObject& delivered) {
    const auto [begin, end] = handlers_.equal_range(delivered.interest_type);
    for (auto it = begin; it != end; ++it) it->second(delivered);
  });
}

void InteropRuntime::publish_assembly(std::shared_ptr<const reflect::Assembly> assembly) {
  peer_.host_assembly(std::move(assembly));
}

std::shared_ptr<DynObject> InteropRuntime::make(std::string_view type_name,
                                                reflect::Args args) {
  const reflect::TypeDescription* d = peer_.domain().registry().find(type_name);
  const std::string resolved =
      d != nullptr ? d->qualified_name() : std::string(type_name);
  return peer_.domain().instantiate(resolved, args);
}

Value InteropRuntime::call(const std::shared_ptr<DynObject>& object,
                           std::string_view method_name, reflect::Args args) {
  return peer_.proxies().invoke(object, method_name, args);
}

std::shared_ptr<DynObject> InteropRuntime::adapt(const std::shared_ptr<DynObject>& object,
                                                 std::string_view target_type) {
  return peer_.proxies().wrap(object, target_type);
}

conform::CheckResult InteropRuntime::check_conformance(std::string_view source_type,
                                                       std::string_view target_type) {
  return peer_.checker().check(source_type, target_type);
}

void InteropRuntime::subscribe(std::string_view type_name, EventHandler handler) {
  peer_.add_interest(type_name);
  const reflect::TypeDescription* d = peer_.domain().registry().find(type_name);
  handlers_.emplace(d->qualified_name(), std::move(handler));
}

transport::PushAck InteropRuntime::send(std::string_view to,
                                        const std::shared_ptr<DynObject>& object) {
  return peer_.send_object(to, object);
}

std::uint64_t InteropRuntime::export_object(std::shared_ptr<DynObject> object) {
  return remoting_.export_object(std::move(object));
}

std::shared_ptr<DynObject> InteropRuntime::import_remote(std::string_view host,
                                                         std::uint64_t object_id,
                                                         std::string_view type_name) {
  return remoting_.import_ref(host, object_id, type_name);
}

InteropSystem::InteropSystem(std::uint64_t seed)
    : network_(seed), hub_(std::make_shared<transport::AssemblyHub>()) {}

InteropRuntime& InteropSystem::create_runtime(std::string name,
                                              transport::PeerConfig config) {
  if (runtimes_.contains(name)) {
    throw transport::TransportError("runtime '" + name + "' already exists");
  }
  auto runtime =
      std::make_unique<InteropRuntime>(name, network_, hub_, std::move(config));
  InteropRuntime& ref = *runtime;
  runtimes_.emplace(std::move(name), std::move(runtime));
  return ref;
}

InteropRuntime* InteropSystem::find(std::string_view name) noexcept {
  const auto it = runtimes_.find(name);
  return it == runtimes_.end() ? nullptr : it->second.get();
}

std::vector<InteropRuntime*> InteropSystem::runtimes() {
  std::vector<InteropRuntime*> out;
  out.reserve(runtimes_.size());
  for (auto& [name, rt] : runtimes_) out.push_back(rt.get());
  return out;
}

}  // namespace pti::core
