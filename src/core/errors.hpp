// Aggregated error hierarchy of the library. Everything derives from
// pti::Error (util/error.hpp):
//
//   pti::Error
//   ├── xml::XmlError            malformed XML documents
//   ├── reflect::ReflectError    unknown types/members, bad dynamic access
//   ├── conform::ConformError    conformance machinery misuse
//   │   └── conform::AmbiguityError
//   ├── serial::SerialError      malformed payloads, unknown encodings
//   │   └── serial::FrameError   rejected wire frames (carries a FrameFault:
//   │                            truncated / bad-magic / bad-version /
//   │                            unknown-kind / oversized / corrupt)
//   ├── proxy::ProxyError        invocation through missing mappings
//   │   └── proxy::NonConformantError
//   ├── transport::TransportError
//   │   ├── transport::NetworkError   drops, unknown recipients, dead sockets
//   │   └── transport::ProtocolError  optimistic-protocol failures
//   └── remoting::RemotingError  failed remote invocations
#pragma once

#include "conform/conform_error.hpp"
#include "proxy/proxy_error.hpp"
#include "reflect/reflect_error.hpp"
#include "remoting/remoting_error.hpp"
#include "serial/serial_error.hpp"
#include "transport/transport_error.hpp"
#include "util/error.hpp"
#include "xml/xml_error.hpp"
