// Epoch-based reclamation for the lock-free-reader stores.
//
// SymbolTable and ConformanceCache publish stable pointers (folded-name
// views, verdict entries, read-index tables) to readers that hold no lock.
// Evicting a cold entry therefore cannot free its memory immediately: a
// reader that loaded the pointer a moment earlier may still be using it.
// The EpochManager closes that gap with the classic three-step discipline:
//
//   1. PIN    — a reader brackets each operation that may hold such
//               pointers in an EpochManager::Pin (RAII). Pinning publishes
//               the global epoch the operation started in.
//   2. RETIRE — an evictor first unlinks the object from every index (so
//               no NEW reader can reach it), then hands it to retire(),
//               stamped with the current global epoch.
//   3. RECLAIM— try_reclaim() advances the epoch and frees every retired
//               object whose stamp is older than the oldest pinned epoch:
//               every reader that could have seen the object has since
//               unpinned, so the free provably races with no one.
//
// Pins are per-operation/per-message, never per-lookup: the 19ns cached
// conformance check stays pin-free because pinning requires a sequentially
// consistent store (an x86 StoreLoad fence) that would dwarf it. The
// contract is therefore: code that calls lookup()/folded() WITHOUT a pin
// must not run concurrently with evict_cold()/clear(em) on the same store —
// exactly the quiescent-point rule the ResourceGovernor enforces by
// sweeping from a governor thread while workers pin around message
// handling.
//
// Slots are handed out per-Pin from a lock-free Treiber stack, so threads
// never register and thread churn (a soak harness attaching hundreds of
// short-lived peers) cannot leak per-thread state: the slot count is
// bounded by the maximum number of CONCURRENT pins ever observed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace pti::util {

struct EpochSlot;  // one pin's published epoch; defined in epoch.cpp

class EpochManager {
 public:
  EpochManager() = default;
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The process-wide manager. The global SymbolTable and per-peer
  /// conformance caches all retire through it so one sweep covers them.
  [[nodiscard]] static EpochManager& global();

  /// RAII reader pin: publishes the current epoch for the duration of an
  /// operation that may hold pointers into an epoch-protected store.
  class Pin {
   public:
    explicit Pin(EpochManager& em) noexcept : em_(em), slot_(em.acquire_slot()) {}
    ~Pin() { em_.release_slot(slot_); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochManager& em_;
    EpochSlot* slot_;
  };

  /// Hands `object` to the manager for deferred destruction via `deleter`.
  /// Call only AFTER unlinking it from every reader-reachable index.
  void retire(void* object, void (*deleter)(void*));

  /// Typed convenience: retire(p) deletes p at a safe epoch.
  template <class T>
  void retire(T* object) {
    retire(static_cast<void*>(object), [](void* p) { delete static_cast<T*>(p); });
  }

  /// Bumps the global epoch; returns the new value. try_reclaim() advances
  /// on its own, so explicit calls are only needed in tests.
  std::uint64_t advance() noexcept;

  /// Advances the epoch, then frees every retired object stamped before
  /// the oldest currently pinned epoch (all of them when nothing is
  /// pinned). Returns how many objects were freed. Safe to call from any
  /// thread, concurrently with pins and retires.
  std::size_t try_reclaim();

  /// True when no Pin is live — the quiescent-point predicate.
  [[nodiscard]] bool quiescent() const noexcept;

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Retired-but-not-yet-freed object count (observability / test hook).
  [[nodiscard]] std::size_t retired_count() const;
  /// Total objects freed over the manager's lifetime.
  [[nodiscard]] std::uint64_t reclaimed_total() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  friend class Pin;

  [[nodiscard]] EpochSlot* acquire_slot() noexcept;
  void release_slot(EpochSlot* slot) noexcept;

  /// Oldest epoch published by a live pin, or the current epoch when no
  /// pin is live. Retired objects stamped strictly before this are free.
  [[nodiscard]] std::uint64_t min_pinned() const noexcept;

  struct Retired {
    void* object;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> reclaimed_{0};

  // All slots ever created (singly linked via next_all, push-only); free
  // slots additionally sit on the Treiber free stack (next_free).
  std::atomic<EpochSlot*> all_slots_{nullptr};
  std::atomic<EpochSlot*> free_slots_{nullptr};

  mutable std::mutex retired_mutex_;
  std::vector<Retired> retired_;
};

}  // namespace pti::util
