// Base64 (RFC 4648) encode/decode, used to embed binary-serialized object
// payloads inside the XML envelope of the hybrid serialization scheme
// (paper Fig. 3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pti::util {

[[nodiscard]] std::string base64_encode(std::span<const std::uint8_t> data);

/// Returns nullopt on any malformed input (bad characters, bad padding).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text);

}  // namespace pti::util
