// Interned, case-folded string identity — the zero-allocation substrate
// under every name-keyed hot path (registry resolution, conformance-cache
// keys, recursion guards, simulated-network link lookup).
//
// The conformance rules compare names case-insensitively, so the seed code
// case-folded strings at every comparison point: each cache lookup built a
// fresh lowered key, each recursion-guard insert concatenated two lowered
// qualified names, and the registry ran character-folding comparisons on
// every tree probe. A SymbolTable folds and hashes each distinct name
// exactly once and hands out a 32-bit InternedName; equal ids mean equal
// folded names, so every later comparison is an integer compare and every
// later hash is a single multiply — no heap traffic.
//
// find()/find_qualified() never insert and never allocate: probing folds
// and hashes the candidate on the fly and compares it character-by-character
// against stored folded spellings. A name that was never interned cannot be
// the key of anything, so a miss is an authoritative "unknown".
//
// Thread safety: the table is sharded 16 ways by folded hash. Each shard
// stripes its probe index behind a std::shared_mutex (readers share,
// interning writers exclude only their shard), while the entry storage is
// append-only chunked memory published through atomics — so the by-id
// accessors folded() and hash() are lock-free and wait-free, and
// concurrent intern()/find() calls on distinct shards never contend at
// all. Every member function is safe to call from any number of threads
// concurrently; ids and folded() views are stable for the lifetime of the
// table and are never invalidated by later interning.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::util {

/// FNV-1a over the case-folded characters of `s`, continuing from `seed` —
/// the hash of the folded form without materializing it.
[[nodiscard]] constexpr std::uint64_t fold_hash(std::string_view s,
                                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(to_lower(c));
    h *= kFnvPrime64;
  }
  return h;
}

/// Identity of a case-folded string in a SymbolTable. Two names intern to
/// the same id iff they are case-insensitively equal. Default-constructed
/// ids are invalid ("name unknown").
class InternedName {
 public:
  constexpr InternedName() noexcept = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != kInvalid; }
  /// Raw index, usable as a dense array key. Only meaningful when valid().
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return id_; }

  friend constexpr bool operator==(InternedName, InternedName) noexcept = default;

 private:
  friend class SymbolTable;
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  explicit constexpr InternedName(std::uint32_t id) noexcept : id_(id) {}

  std::uint32_t id_ = kInvalid;
};

/// Packs a (source, target) pair of interned names into one 64-bit key —
/// the conformance checker's recursion guards and memo tables key on this.
[[nodiscard]] constexpr std::uint64_t pair_key(InternedName a, InternedName b) noexcept {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

/// Append-only, sharded table of case-folded names. Interning is amortized
/// O(1); find() is O(1) with zero allocations. Ids are stable for the
/// lifetime of the table and folded() views are never invalidated.
///
/// Concurrency contract:
///  - intern()/intern_qualified(): safe from any thread; exclusive only
///    within the target shard (striped locking).
///  - find()/find_qualified(): safe from any thread; shared lock on one
///    shard, zero allocations.
///  - folded()/hash(): lock-free — they read the append-only chunk storage
///    through acquire loads and never touch the shard index.
///  - size(): lock-free, may transiently under-count concurrent interns.
class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// The process-wide table. TypeDescription, TypeRegistry, the
  /// conformance cache and SimNetwork all share it so their ids agree.
  [[nodiscard]] static SymbolTable& global();

  /// Folds `s` and returns its id, inserting on first sight. Throws
  /// std::length_error if the target shard is at capacity (~256K names
  /// per shard, ~4M total) — far above current workloads; the hostile-peer
  /// eviction story (ROADMAP) will replace the hard cap.
  InternedName intern(std::string_view s);

  /// Interns the qualified form "ns.name" (or just "name" when `ns` is
  /// empty) without building the concatenation unless it is new. Throws
  /// like intern() at shard capacity.
  InternedName intern_qualified(std::string_view ns, std::string_view name);

  /// Id of `s` if it was ever interned; invalid otherwise. Never inserts,
  /// never allocates.
  [[nodiscard]] InternedName find(std::string_view s) const noexcept;

  /// find() of the qualified form "ns.name" without concatenating.
  [[nodiscard]] InternedName find_qualified(std::string_view ns,
                                            std::string_view name) const noexcept;

  /// The stored folded spelling. Stable for the table's lifetime; safe to
  /// call concurrently with interning (lock-free).
  [[nodiscard]] std::string_view folded(InternedName id) const noexcept;

  /// The precomputed hash of the folded spelling. Lock-free.
  [[nodiscard]] std::uint64_t hash(InternedName id) const noexcept;

  /// Total interned names across all shards (may lag concurrent interns).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Number of shards (compile-time constant, exposed for stats/tests).
  [[nodiscard]] static constexpr std::size_t shard_count() noexcept { return kShardCount; }

  /// Names interned into shard `shard` so far — the per-shard occupancy
  /// hook a future eviction/epoch story will build on.
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const noexcept;

 private:
  // Ids interleave shards: id = (slot << kShardBits) | shard. The shard is
  // picked from the folded hash, so both halves of the id are recoverable
  // without any lookup.
  static constexpr std::uint32_t kShardBits = 4;
  static constexpr std::uint32_t kShardCount = 1u << kShardBits;
  // Entry storage is chunked so a slot's address never moves: chunk
  // pointers are published once and entries are written before the shard's
  // size counter is bumped (release), which is what makes by-id reads
  // lock-free. 256-entry chunks keep the first intern into a shard cheap;
  // 1024 chunk slots x 16 shards cap the table at ~4M distinct names
  // (intern throws std::length_error beyond that) while keeping the fixed
  // footprint of an empty table to ~8KB per shard.
  static constexpr std::uint32_t kChunkBits = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr std::uint32_t kMaxChunks = 1u << 10;  // 256K names per shard

  struct Entry {
    std::string folded;
    std::uint64_t hash = 0;
  };
  using Chunk = std::array<Entry, kChunkSize>;

  struct Shard {
    mutable std::shared_mutex mutex;
    // folded hash -> slots in this shard; guarded by `mutex`.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    // Append-only entry storage; readable without the mutex.
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
    std::atomic<std::uint32_t> count{0};
  };

  [[nodiscard]] static constexpr std::size_t shard_of(std::uint64_t h) noexcept {
    // xor-fold so shard choice uses more than the low bits of FNV.
    return static_cast<std::size_t>((h ^ (h >> 32)) & (kShardCount - 1));
  }
  [[nodiscard]] static constexpr std::uint32_t make_id(std::size_t shard,
                                                       std::uint32_t slot) noexcept {
    return (slot << kShardBits) | static_cast<std::uint32_t>(shard);
  }

  /// Entry for a published slot of `shard`; requires slot < published count.
  [[nodiscard]] const Entry& entry_at(const Shard& shard, std::uint32_t slot) const noexcept;

  /// Probe under the caller-held shard lock (shared or exclusive).
  [[nodiscard]] InternedName find_in_shard(const Shard& shard, std::size_t shard_idx,
                                           std::uint64_t h, std::string_view ns,
                                           std::string_view name) const noexcept;

  /// Insert under the caller-held exclusive shard lock.
  InternedName insert_locked(Shard& shard, std::size_t shard_idx, std::uint64_t h,
                             std::string&& folded);

  std::array<Shard, kShardCount> shards_;
};

}  // namespace pti::util

template <>
struct std::hash<pti::util::InternedName> {
  [[nodiscard]] std::size_t operator()(pti::util::InternedName id) const noexcept {
    // Fibonacci scramble: raw ids are small sequential integers.
    return static_cast<std::size_t>(id.value() * 0x9E3779B97F4A7C15ULL);
  }
};
