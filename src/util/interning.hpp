// Interned, case-folded string identity — the zero-allocation substrate
// under every name-keyed hot path (registry resolution, conformance-cache
// keys, recursion guards, simulated-network link lookup).
//
// The conformance rules compare names case-insensitively, so the seed code
// case-folded strings at every comparison point: each cache lookup built a
// fresh lowered key, each recursion-guard insert concatenated two lowered
// qualified names, and the registry ran character-folding comparisons on
// every tree probe. A SymbolTable folds and hashes each distinct name
// exactly once and hands out a 32-bit InternedName; equal ids mean equal
// folded names, so every later comparison is an integer compare and every
// later hash is a single multiply — no heap traffic.
//
// find()/find_qualified() never insert and never allocate: probing folds
// and hashes the candidate on the fly and compares it character-by-character
// against stored folded spellings. A name that was never interned cannot be
// the key of anything, so a miss is an authoritative "unknown".
//
// Thread safety: the table is sharded 16 ways by folded hash. Each shard
// stripes its probe index behind a std::shared_mutex (readers share,
// interning writers exclude only their shard), while the entry storage is
// chunked memory whose slots each publish a heap-allocated folded string
// through an atomic pointer — so the by-id accessors folded() and hash()
// are lock-free, and concurrent intern()/find() calls on distinct shards
// never contend at all.
//
// Reclamation (hostile-peer governance): ids and folded() views are stable
// until a name is explicitly evicted via evict_cold(), which (1) unlinks
// the slot from the probe index under the exclusive shard lock, (2) hands
// the folded string to a util::EpochManager retire list, and (3) recycles
// the slot for later interns. Lock-free readers that may overlap an
// eviction must bracket their use of folded() views in an
// EpochManager::Pin; callers that evict are responsible for only evicting
// names that no long-lived structure (registry, link table) still
// references — recency (`last_use` ticks) plus an `in_use` predicate is
// how the ResourceGovernor approximates that.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::transport {
class InterestIndex;
}

namespace pti::util {

class EpochManager;

/// FNV-1a over the case-folded characters of `s`, continuing from `seed` —
/// the hash of the folded form without materializing it.
[[nodiscard]] constexpr std::uint64_t fold_hash(std::string_view s,
                                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(to_lower(c));
    h *= kFnvPrime64;
  }
  return h;
}

/// Identity of a case-folded string in a SymbolTable. Two names intern to
/// the same id iff they are case-insensitively equal. Default-constructed
/// ids are invalid ("name unknown").
class InternedName {
 public:
  constexpr InternedName() noexcept = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != kInvalid; }
  /// Raw index, usable as a dense array key. Only meaningful when valid().
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return id_; }

  friend constexpr bool operator==(InternedName, InternedName) noexcept = default;

 private:
  friend class SymbolTable;
  // InterestIndex stores raw id values in its fingerprint-bucket posting
  // lists and must re-mint them when handing candidates back out.
  friend class pti::transport::InterestIndex;
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  explicit constexpr InternedName(std::uint32_t id) noexcept : id_(id) {}

  std::uint32_t id_ = kInvalid;
};

/// Packs a (source, target) pair of interned names into one 64-bit key —
/// the conformance checker's recursion guards and memo tables key on this.
[[nodiscard]] constexpr std::uint64_t pair_key(InternedName a, InternedName b) noexcept {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

/// Sharded table of case-folded names. Interning is amortized O(1); find()
/// is O(1) with zero allocations. Ids are stable until explicitly evicted.
///
/// Concurrency contract:
///  - intern()/intern_qualified(): safe from any thread; exclusive only
///    within the target shard (striped locking).
///  - find()/find_qualified(): safe from any thread; shared lock on one
///    shard, zero allocations.
///  - folded()/hash(): lock-free — they read the slot's published string
///    pointer with an acquire load and never touch the shard index. When
///    eviction may run concurrently, hold an EpochManager::Pin for as long
///    as the returned view is used.
///  - evict_cold(): exclusive per shard; retires strings through the
///    EpochManager instead of freeing, so concurrent pinned readers stay
///    valid.
///  - size(): lock-free, may transiently under-count concurrent interns.
class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// The process-wide table. TypeDescription, TypeRegistry, the
  /// conformance cache and SimNetwork all share it so their ids agree.
  [[nodiscard]] static SymbolTable& global();

  /// Folds `s` and returns its id, inserting on first sight. Throws
  /// pti::ResourceExhaustedError (classified ErrorCode::ResourceExhausted)
  /// if the target shard is at capacity (~256K names per shard, ~4M total)
  /// — the backstop behind per-peer name budgets and cold-name eviction.
  InternedName intern(std::string_view s);

  /// Interns the qualified form "ns.name" (or just "name" when `ns` is
  /// empty) without building the concatenation unless it is new. Throws
  /// like intern() at shard capacity.
  InternedName intern_qualified(std::string_view ns, std::string_view name);

  /// Id of `s` if it is currently interned; invalid otherwise. Never
  /// inserts, never allocates.
  [[nodiscard]] InternedName find(std::string_view s) const noexcept;

  /// find() of the qualified form "ns.name" without concatenating.
  [[nodiscard]] InternedName find_qualified(std::string_view ns,
                                            std::string_view name) const noexcept;

  /// The stored folded spelling; empty for evicted or invalid ids. Stable
  /// while the id is live; under concurrent eviction, valid for the
  /// duration of the caller's EpochManager::Pin. Lock-free.
  [[nodiscard]] std::string_view folded(InternedName id) const noexcept;

  /// The precomputed hash of the folded spelling; 0 for evicted or invalid
  /// ids. Lock-free.
  [[nodiscard]] std::uint64_t hash(InternedName id) const noexcept;

  /// Live (non-evicted) names across all shards (may lag concurrent
  /// interns/evictions).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Number of shards (compile-time constant, exposed for stats/tests).
  [[nodiscard]] static constexpr std::size_t shard_count() noexcept { return kShardCount; }

  /// Live names in shard `shard` — the per-shard occupancy input to the
  /// cold-entry eviction policy.
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const noexcept;

  /// Advances the usage clock one tick and returns the new tick. Intern
  /// and find hits stamp their entry with the current tick; evict_cold()
  /// measures idleness in ticks. The governor advances this once per
  /// sweep, so "idle for N ticks" means "unused for N sweeps".
  std::uint32_t advance_tick() noexcept;

  /// Evicts up to `max_evict` names that have not been touched for at
  /// least `min_idle_ticks` ticks and for which `in_use` (when provided)
  /// returns false. Evicted slots are recycled by later interns; the
  /// folded strings are retired through `em` and freed only once every
  /// pin that could reference them has released. Returns the number of
  /// names evicted.
  ///
  /// Caller contract: only evict names that nothing long-lived references
  /// — a recycled slot's id is reused for a DIFFERENT name, so any stale
  /// InternedName kept across an eviction would silently change meaning.
  /// The `in_use` predicate is the caller's veto (e.g. "still registered
  /// in some TypeRegistry").
  std::size_t evict_cold(EpochManager& em, std::uint32_t min_idle_ticks,
                         std::size_t max_evict,
                         const std::function<bool(InternedName)>& in_use = {});

 private:
  // Ids interleave shards: id = (slot << kShardBits) | shard. The shard is
  // picked from the folded hash, so both halves of the id are recoverable
  // without any lookup.
  static constexpr std::uint32_t kShardBits = 4;
  static constexpr std::uint32_t kShardCount = 1u << kShardBits;
  // Entry storage is chunked so a slot's address never moves: chunk
  // pointers are published once and each slot's string pointer is stored
  // with release before the slot becomes reachable, which is what makes
  // by-id reads lock-free. 256-entry chunks keep the first intern into a
  // shard cheap; 1024 chunk slots x 16 shards cap the table at ~4M
  // distinct live names (intern throws pti::ResourceExhaustedError beyond
  // that) while keeping the fixed footprint of an empty table small.
  static constexpr std::uint32_t kChunkBits = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr std::uint32_t kMaxChunks = 1u << 10;  // 256K names per shard

  // One slot. `name` owns the heap-allocated folded spelling and is the
  // publication point: readers acquire-load it and see the `hash` stored
  // before it. nullptr means never-used or evicted. `last_use` is the
  // recency stamp for the eviction policy (relaxed; advisory only).
  struct Entry {
    std::atomic<const std::string*> name{nullptr};
    std::atomic<std::uint64_t> hash{0};
    mutable std::atomic<std::uint32_t> last_use{0};
  };
  using Chunk = std::array<Entry, kChunkSize>;

  struct Shard {
    mutable std::shared_mutex mutex;
    // folded hash -> slots in this shard; guarded by `mutex`. Only live
    // slots appear here (eviction unlinks before retiring the string).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    // Chunked entry storage; slot addresses never move, so by-id reads
    // need no lock. Chunks are allocated on demand and never freed until
    // table destruction.
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
    // High-water slot count: slots < count have been used at least once.
    std::atomic<std::uint32_t> count{0};
    // Live (non-evicted) slots; count minus evictions plus reuses.
    std::atomic<std::uint32_t> live{0};
    // Evicted slots awaiting reuse; guarded by `mutex`.
    std::vector<std::uint32_t> free_slots;
  };

  [[nodiscard]] static constexpr std::size_t shard_of(std::uint64_t h) noexcept {
    // xor-fold so shard choice uses more than the low bits of FNV.
    return static_cast<std::size_t>((h ^ (h >> 32)) & (kShardCount - 1));
  }
  [[nodiscard]] static constexpr std::uint32_t make_id(std::size_t shard,
                                                       std::uint32_t slot) noexcept {
    return (slot << kShardBits) | static_cast<std::uint32_t>(shard);
  }

  /// Entry for a used slot of `shard`; requires slot < published count.
  [[nodiscard]] const Entry& entry_at(const Shard& shard, std::uint32_t slot) const noexcept;
  [[nodiscard]] Entry& entry_at(Shard& shard, std::uint32_t slot) noexcept;

  /// Probe under the caller-held shard lock (shared or exclusive); stamps
  /// the hit's last_use with the current tick.
  [[nodiscard]] InternedName find_in_shard(const Shard& shard, std::size_t shard_idx,
                                           std::uint64_t h, std::string_view ns,
                                           std::string_view name) const noexcept;

  /// Insert under the caller-held exclusive shard lock; reuses a free slot
  /// when one exists.
  InternedName insert_locked(Shard& shard, std::size_t shard_idx, std::uint64_t h,
                             std::string&& folded);

  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint32_t> tick_{1};
};

}  // namespace pti::util

template <>
struct std::hash<pti::util::InternedName> {
  [[nodiscard]] std::size_t operator()(pti::util::InternedName id) const noexcept {
    // Fibonacci scramble: raw ids are small sequential integers.
    return static_cast<std::size_t>(id.value() * 0x9E3779B97F4A7C15ULL);
  }
};
