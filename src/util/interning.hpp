// Interned, case-folded string identity — the zero-allocation substrate
// under every name-keyed hot path (registry resolution, conformance-cache
// keys, recursion guards, simulated-network link lookup).
//
// The conformance rules compare names case-insensitively, so the seed code
// case-folded strings at every comparison point: each cache lookup built a
// fresh lowered key, each recursion-guard insert concatenated two lowered
// qualified names, and the registry ran character-folding comparisons on
// every tree probe. A SymbolTable folds and hashes each distinct name
// exactly once and hands out a 32-bit InternedName; equal ids mean equal
// folded names, so every later comparison is an integer compare and every
// later hash is a single multiply — no heap traffic.
//
// find()/find_qualified() never insert and never allocate: probing folds
// and hashes the candidate on the fly and compares it character-by-character
// against stored folded spellings. A name that was never interned cannot be
// the key of anything, so a miss is an authoritative "unknown".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::util {

/// FNV-1a over the case-folded characters of `s`, continuing from `seed` —
/// the hash of the folded form without materializing it.
[[nodiscard]] constexpr std::uint64_t fold_hash(std::string_view s,
                                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(to_lower(c));
    h *= kFnvPrime64;
  }
  return h;
}

/// Identity of a case-folded string in a SymbolTable. Two names intern to
/// the same id iff they are case-insensitively equal. Default-constructed
/// ids are invalid ("name unknown").
class InternedName {
 public:
  constexpr InternedName() noexcept = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != kInvalid; }
  /// Raw index, usable as a dense array key. Only meaningful when valid().
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return id_; }

  friend constexpr bool operator==(InternedName, InternedName) noexcept = default;

 private:
  friend class SymbolTable;
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  explicit constexpr InternedName(std::uint32_t id) noexcept : id_(id) {}

  std::uint32_t id_ = kInvalid;
};

/// Packs a (source, target) pair of interned names into one 64-bit key —
/// the conformance checker's recursion guards and memo tables key on this.
[[nodiscard]] constexpr std::uint64_t pair_key(InternedName a, InternedName b) noexcept {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

/// Append-only table of case-folded names. Interning is amortized O(1);
/// find() is O(1) with zero allocations. Ids are stable for the lifetime
/// of the table and folded() views are never invalidated.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// The process-wide table. TypeDescription, TypeRegistry, the
  /// conformance cache and SimNetwork all share it so their ids agree.
  [[nodiscard]] static SymbolTable& global();

  /// Folds `s` and returns its id, inserting on first sight.
  InternedName intern(std::string_view s);

  /// Interns the qualified form "ns.name" (or just "name" when `ns` is
  /// empty) without building the concatenation unless it is new.
  InternedName intern_qualified(std::string_view ns, std::string_view name);

  /// Id of `s` if it was ever interned; invalid otherwise. Never inserts,
  /// never allocates.
  [[nodiscard]] InternedName find(std::string_view s) const noexcept;

  /// find() of the qualified form "ns.name" without concatenating.
  [[nodiscard]] InternedName find_qualified(std::string_view ns,
                                            std::string_view name) const noexcept;

  /// The stored folded spelling. Stable for the table's lifetime.
  [[nodiscard]] std::string_view folded(InternedName id) const noexcept;

  /// The precomputed hash of the folded spelling.
  [[nodiscard]] std::uint64_t hash(InternedName id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string folded;
    std::uint64_t hash = 0;
  };

  [[nodiscard]] InternedName find_hashed(std::uint64_t h, std::string_view ns,
                                         std::string_view name) const noexcept;

  // Entries live in a deque so folded() views survive growth; the index
  // buckets ids by folded hash (collisions resolved by folded compare).
  std::deque<Entry> entries_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
};

}  // namespace pti::util

template <>
struct std::hash<pti::util::InternedName> {
  [[nodiscard]] std::size_t operator()(pti::util::InternedName id) const noexcept {
    // Fibonacci scramble: raw ids are small sequential integers.
    return static_cast<std::size_t>(id.value() * 0x9E3779B97F4A7C15ULL);
  }
};
