#include "util/base64.hpp"

#include <array>

namespace pti::util {

namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    t[static_cast<std::uint8_t>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return t;
}

constexpr auto kDecode = make_decode_table();

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back(kAlphabet[(v >> 6) & 0x3F]);
    out.push_back(kAlphabet[v & 0x3F]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back(kAlphabet[(v >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve((text.size() / 4) * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=') {
        // Padding only allowed in the last two positions of the final group.
        if (i + 4 != text.size() || k < 2) return std::nullopt;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after padding
      const std::int8_t d = kDecode[static_cast<std::uint8_t>(c)];
      if (d < 0) return std::nullopt;
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  return out;
}

}  // namespace pti::util
