// Root of the PTI exception hierarchy. Module-specific errors (conformance,
// serialization, transport, remoting) derive from pti::Error so callers can
// catch the whole library with a single handler.
#pragma once

#include <stdexcept>
#include <string>

namespace pti {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A governed resource ran out: an interning shard hit its hard cap, or a
/// peer exhausted one of its quotas (bytes/sec, in-flight exchanges, frame
/// size, distinct-name budget). Lives at the root of the hierarchy because
/// both util (SymbolTable) and transport (PeerQuotaTable) raise it, and
/// util cannot depend on transport. Classified as
/// core::ErrorCode::ResourceExhausted.
class ResourceExhaustedError : public Error {
 public:
  using Error::Error;
};

}  // namespace pti
