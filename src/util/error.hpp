// Root of the PTI exception hierarchy. Module-specific errors (conformance,
// serialization, transport, remoting) derive from pti::Error so callers can
// catch the whole library with a single handler.
#pragma once

#include <stdexcept>
#include <string>

namespace pti {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace pti
