#include "util/interning.hpp"

#include <mutex>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::util {

namespace {

[[nodiscard]] std::uint64_t fold_hash_char(char c, std::uint64_t h) noexcept {
  h ^= static_cast<std::uint8_t>(to_lower(c));
  h *= kFnvPrime64;
  return h;
}

/// Does `folded` (already lower-case) spell "ns.name" case-folded? Avoids
/// concatenating the probe.
[[nodiscard]] bool folded_equals(std::string_view folded, std::string_view ns,
                                 std::string_view name) noexcept {
  if (ns.empty()) return iequals(folded, name);
  if (folded.size() != ns.size() + 1 + name.size()) return false;
  return iequals(folded.substr(0, ns.size()), ns) && folded[ns.size()] == '.' &&
         iequals(folded.substr(ns.size() + 1), name);
}

}  // namespace

SymbolTable::SymbolTable() = default;

SymbolTable::~SymbolTable() {
  for (Shard& shard : shards_) {
    for (auto& chunk : shard.chunks) {
      delete chunk.load(std::memory_order_relaxed);
    }
  }
}

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

const SymbolTable::Entry& SymbolTable::entry_at(const Shard& shard,
                                                std::uint32_t slot) const noexcept {
  // The chunk pointer was stored before the slot was published via the
  // shard count (release); callers established slot validity through an
  // acquire load of that count or while holding the shard mutex, so a
  // relaxed load here reads a fully constructed entry.
  const Chunk* chunk = shard.chunks[slot >> kChunkBits].load(std::memory_order_relaxed);
  return (*chunk)[slot & (kChunkSize - 1)];
}

InternedName SymbolTable::find_in_shard(const Shard& shard, std::size_t shard_idx,
                                        std::uint64_t h, std::string_view ns,
                                        std::string_view name) const noexcept {
  const auto it = shard.index.find(h);
  if (it == shard.index.end()) return {};
  for (const std::uint32_t slot : it->second) {
    if (folded_equals(entry_at(shard, slot).folded, ns, name)) {
      return InternedName(make_id(shard_idx, slot));
    }
  }
  return {};
}

InternedName SymbolTable::insert_locked(Shard& shard, std::size_t shard_idx,
                                        std::uint64_t h, std::string&& folded) {
  const std::uint32_t slot = shard.count.load(std::memory_order_relaxed);
  if (slot >= kMaxChunks * kChunkSize) {
    throw std::length_error("SymbolTable shard full");
  }
  const std::uint32_t chunk_idx = slot >> kChunkBits;
  Chunk* chunk = shard.chunks[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    shard.chunks[chunk_idx].store(chunk, std::memory_order_relaxed);
  }
  Entry& entry = (*chunk)[slot & (kChunkSize - 1)];
  entry.folded = std::move(folded);
  entry.hash = h;
  shard.index[h].push_back(slot);
  // Publish: the entry (and its chunk pointer) become visible to lock-free
  // readers only after this release store.
  shard.count.store(slot + 1, std::memory_order_release);
  return InternedName(make_id(shard_idx, slot));
}

InternedName SymbolTable::find(std::string_view s) const noexcept {
  const std::uint64_t h = fold_hash(s);
  const std::size_t shard_idx = shard_of(h);
  const Shard& shard = shards_[shard_idx];
  std::shared_lock lock(shard.mutex);
  return find_in_shard(shard, shard_idx, h, {}, s);
}

InternedName SymbolTable::find_qualified(std::string_view ns,
                                         std::string_view name) const noexcept {
  if (ns.empty()) return find(name);
  std::uint64_t h = fold_hash(ns);
  h = fold_hash_char('.', h);
  h = fold_hash(name, h);
  const std::size_t shard_idx = shard_of(h);
  const Shard& shard = shards_[shard_idx];
  std::shared_lock lock(shard.mutex);
  return find_in_shard(shard, shard_idx, h, ns, name);
}

InternedName SymbolTable::intern(std::string_view s) {
  const std::uint64_t h = fold_hash(s);
  const std::size_t shard_idx = shard_of(h);
  Shard& shard = shards_[shard_idx];
  {
    std::shared_lock lock(shard.mutex);
    if (const InternedName id = find_in_shard(shard, shard_idx, h, {}, s); id.valid()) {
      return id;
    }
  }
  std::unique_lock lock(shard.mutex);
  // Re-probe: another thread may have interned `s` between the locks.
  if (const InternedName id = find_in_shard(shard, shard_idx, h, {}, s); id.valid()) {
    return id;
  }
  return insert_locked(shard, shard_idx, h, to_lower(s));
}

InternedName SymbolTable::intern_qualified(std::string_view ns, std::string_view name) {
  if (ns.empty()) return intern(name);
  std::uint64_t h = fold_hash(ns);
  h = fold_hash_char('.', h);
  h = fold_hash(name, h);
  const std::size_t shard_idx = shard_of(h);
  Shard& shard = shards_[shard_idx];
  {
    std::shared_lock lock(shard.mutex);
    if (const InternedName id = find_in_shard(shard, shard_idx, h, ns, name); id.valid()) {
      return id;
    }
  }
  std::unique_lock lock(shard.mutex);
  if (const InternedName id = find_in_shard(shard, shard_idx, h, ns, name); id.valid()) {
    return id;
  }
  std::string folded;
  folded.reserve(ns.size() + 1 + name.size());
  folded += to_lower(ns);
  folded += '.';
  folded += to_lower(name);
  return insert_locked(shard, shard_idx, h, std::move(folded));
}

std::string_view SymbolTable::folded(InternedName id) const noexcept {
  if (!id.valid()) return {};
  const Shard& shard = shards_[id.value() & (kShardCount - 1)];
  const std::uint32_t slot = id.value() >> kShardBits;
  if (slot >= shard.count.load(std::memory_order_acquire)) return {};
  return entry_at(shard, slot).folded;
}

std::uint64_t SymbolTable::hash(InternedName id) const noexcept {
  if (!id.valid()) return 0;
  const Shard& shard = shards_[id.value() & (kShardCount - 1)];
  const std::uint32_t slot = id.value() >> kShardBits;
  if (slot >= shard.count.load(std::memory_order_acquire)) return 0;
  return entry_at(shard, slot).hash;
}

std::size_t SymbolTable::size() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_acquire);
  }
  return total;
}

std::size_t SymbolTable::shard_size(std::size_t shard) const noexcept {
  if (shard >= kShardCount) return 0;
  return shards_[shard].count.load(std::memory_order_acquire);
}

}  // namespace pti::util
