#include "util/interning.hpp"

#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::util {

namespace {

[[nodiscard]] std::uint64_t fold_hash_char(char c, std::uint64_t h) noexcept {
  h ^= static_cast<std::uint8_t>(to_lower(c));
  h *= kFnvPrime64;
  return h;
}

/// Does `folded` (already lower-case) spell "ns.name" case-folded? Avoids
/// concatenating the probe.
[[nodiscard]] bool folded_equals(std::string_view folded, std::string_view ns,
                                 std::string_view name) noexcept {
  if (ns.empty()) return iequals(folded, name);
  if (folded.size() != ns.size() + 1 + name.size()) return false;
  return iequals(folded.substr(0, ns.size()), ns) && folded[ns.size()] == '.' &&
         iequals(folded.substr(ns.size() + 1), name);
}

}  // namespace

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

InternedName SymbolTable::find_hashed(std::uint64_t h, std::string_view ns,
                                      std::string_view name) const noexcept {
  const auto it = index_.find(h);
  if (it == index_.end()) return {};
  for (const std::uint32_t id : it->second) {
    if (folded_equals(entries_[id].folded, ns, name)) return InternedName(id);
  }
  return {};
}

InternedName SymbolTable::find(std::string_view s) const noexcept {
  return find_hashed(fold_hash(s), {}, s);
}

InternedName SymbolTable::find_qualified(std::string_view ns,
                                         std::string_view name) const noexcept {
  if (ns.empty()) return find(name);
  std::uint64_t h = fold_hash(ns);
  h = fold_hash_char('.', h);
  h = fold_hash(name, h);
  return find_hashed(h, ns, name);
}

InternedName SymbolTable::intern(std::string_view s) {
  const std::uint64_t h = fold_hash(s);
  if (const InternedName id = find_hashed(h, {}, s); id.valid()) return id;
  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{to_lower(s), h});
  index_[h].push_back(id);
  return InternedName(id);
}

InternedName SymbolTable::intern_qualified(std::string_view ns, std::string_view name) {
  if (ns.empty()) return intern(name);
  std::uint64_t h = fold_hash(ns);
  h = fold_hash_char('.', h);
  h = fold_hash(name, h);
  if (const InternedName id = find_hashed(h, ns, name); id.valid()) return id;
  std::string folded;
  folded.reserve(ns.size() + 1 + name.size());
  folded += to_lower(ns);
  folded += '.';
  folded += to_lower(name);
  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{std::move(folded), h});
  index_[h].push_back(id);
  return InternedName(id);
}

std::string_view SymbolTable::folded(InternedName id) const noexcept {
  if (!id.valid() || id.value() >= entries_.size()) return {};
  return entries_[id.value()].folded;
}

std::uint64_t SymbolTable::hash(InternedName id) const noexcept {
  if (!id.valid() || id.value() >= entries_.size()) return 0;
  return entries_[id.value()].hash;
}

}  // namespace pti::util
