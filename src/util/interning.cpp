#include "util/interning.hpp"

#include <mutex>

#include "util/epoch.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::util {

namespace {

[[nodiscard]] std::uint64_t fold_hash_char(char c, std::uint64_t h) noexcept {
  h ^= static_cast<std::uint8_t>(to_lower(c));
  h *= kFnvPrime64;
  return h;
}

/// Does `folded` (already lower-case) spell "ns.name" case-folded? Avoids
/// concatenating the probe.
[[nodiscard]] bool folded_equals(std::string_view folded, std::string_view ns,
                                 std::string_view name) noexcept {
  if (ns.empty()) return iequals(folded, name);
  if (folded.size() != ns.size() + 1 + name.size()) return false;
  return iequals(folded.substr(0, ns.size()), ns) && folded[ns.size()] == '.' &&
         iequals(folded.substr(ns.size() + 1), name);
}

}  // namespace

SymbolTable::SymbolTable() = default;

SymbolTable::~SymbolTable() {
  for (Shard& shard : shards_) {
    for (auto& chunk_ptr : shard.chunks) {
      Chunk* chunk = chunk_ptr.load(std::memory_order_relaxed);
      if (chunk == nullptr) continue;
      for (Entry& entry : *chunk) {
        delete entry.name.load(std::memory_order_relaxed);
      }
      delete chunk;
    }
  }
}

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

const SymbolTable::Entry& SymbolTable::entry_at(const Shard& shard,
                                                std::uint32_t slot) const noexcept {
  // The chunk pointer was stored before the slot was first published;
  // callers established slot validity through an acquire load of the shard
  // count or while holding the shard mutex, so a relaxed load here reads a
  // fully constructed chunk.
  const Chunk* chunk = shard.chunks[slot >> kChunkBits].load(std::memory_order_relaxed);
  return (*chunk)[slot & (kChunkSize - 1)];
}

SymbolTable::Entry& SymbolTable::entry_at(Shard& shard, std::uint32_t slot) noexcept {
  Chunk* chunk = shard.chunks[slot >> kChunkBits].load(std::memory_order_relaxed);
  return (*chunk)[slot & (kChunkSize - 1)];
}

InternedName SymbolTable::find_in_shard(const Shard& shard, std::size_t shard_idx,
                                        std::uint64_t h, std::string_view ns,
                                        std::string_view name) const noexcept {
  const auto it = shard.index.find(h);
  if (it == shard.index.end()) return {};
  const std::uint32_t tick = tick_.load(std::memory_order_relaxed);
  for (const std::uint32_t slot : it->second) {
    const Entry& entry = entry_at(shard, slot);
    // Indexed slots always carry a live name: eviction unlinks from the
    // index (under this same lock) before clearing the pointer.
    const std::string* stored = entry.name.load(std::memory_order_acquire);
    if (stored != nullptr && folded_equals(*stored, ns, name)) {
      // Store-only-if-different keeps repeat hits within one tick from
      // bouncing the cache line between readers.
      if (entry.last_use.load(std::memory_order_relaxed) != tick) {
        entry.last_use.store(tick, std::memory_order_relaxed);
      }
      return InternedName(make_id(shard_idx, slot));
    }
  }
  return {};
}

InternedName SymbolTable::insert_locked(Shard& shard, std::size_t shard_idx,
                                        std::uint64_t h, std::string&& folded) {
  std::uint32_t slot;
  if (!shard.free_slots.empty()) {
    // Recycle an evicted slot: its chunk already exists and its previous
    // string is on the epoch retire list (or already freed).
    slot = shard.free_slots.back();
    shard.free_slots.pop_back();
  } else {
    slot = shard.count.load(std::memory_order_relaxed);
    if (slot >= kMaxChunks * kChunkSize) {
      throw pti::ResourceExhaustedError(
          "SymbolTable shard " + std::to_string(shard_idx) + " full (" +
          std::to_string(kMaxChunks * kChunkSize) +
          " names): interned-name budget exhausted");
    }
    const std::uint32_t chunk_idx = slot >> kChunkBits;
    Chunk* chunk = shard.chunks[chunk_idx].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      shard.chunks[chunk_idx].store(chunk, std::memory_order_relaxed);
    }
  }
  Entry& entry = entry_at(shard, slot);
  entry.hash.store(h, std::memory_order_relaxed);
  entry.last_use.store(tick_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  // Publish: hash before name (release) so a lock-free reader that sees
  // the name pointer sees its hash; the index insert below is what makes
  // the slot findable, and it happens under the exclusive shard lock.
  entry.name.store(new std::string(std::move(folded)), std::memory_order_release);
  shard.index[h].push_back(slot);
  shard.live.fetch_add(1, std::memory_order_relaxed);
  // High-water publication for fresh slots: by-id readers bound-check
  // against this count.
  const std::uint32_t count = shard.count.load(std::memory_order_relaxed);
  if (slot >= count) {
    shard.count.store(slot + 1, std::memory_order_release);
  }
  return InternedName(make_id(shard_idx, slot));
}

InternedName SymbolTable::find(std::string_view s) const noexcept {
  const std::uint64_t h = fold_hash(s);
  const std::size_t shard_idx = shard_of(h);
  const Shard& shard = shards_[shard_idx];
  std::shared_lock lock(shard.mutex);
  return find_in_shard(shard, shard_idx, h, {}, s);
}

InternedName SymbolTable::find_qualified(std::string_view ns,
                                         std::string_view name) const noexcept {
  if (ns.empty()) return find(name);
  std::uint64_t h = fold_hash(ns);
  h = fold_hash_char('.', h);
  h = fold_hash(name, h);
  const std::size_t shard_idx = shard_of(h);
  const Shard& shard = shards_[shard_idx];
  std::shared_lock lock(shard.mutex);
  return find_in_shard(shard, shard_idx, h, ns, name);
}

InternedName SymbolTable::intern(std::string_view s) {
  const std::uint64_t h = fold_hash(s);
  const std::size_t shard_idx = shard_of(h);
  Shard& shard = shards_[shard_idx];
  {
    std::shared_lock lock(shard.mutex);
    if (const InternedName id = find_in_shard(shard, shard_idx, h, {}, s); id.valid()) {
      return id;
    }
  }
  std::unique_lock lock(shard.mutex);
  // Re-probe: another thread may have interned `s` between the locks.
  if (const InternedName id = find_in_shard(shard, shard_idx, h, {}, s); id.valid()) {
    return id;
  }
  return insert_locked(shard, shard_idx, h, to_lower(s));
}

InternedName SymbolTable::intern_qualified(std::string_view ns, std::string_view name) {
  if (ns.empty()) return intern(name);
  std::uint64_t h = fold_hash(ns);
  h = fold_hash_char('.', h);
  h = fold_hash(name, h);
  const std::size_t shard_idx = shard_of(h);
  Shard& shard = shards_[shard_idx];
  {
    std::shared_lock lock(shard.mutex);
    if (const InternedName id = find_in_shard(shard, shard_idx, h, ns, name); id.valid()) {
      return id;
    }
  }
  std::unique_lock lock(shard.mutex);
  if (const InternedName id = find_in_shard(shard, shard_idx, h, ns, name); id.valid()) {
    return id;
  }
  std::string folded;
  folded.reserve(ns.size() + 1 + name.size());
  folded += to_lower(ns);
  folded += '.';
  folded += to_lower(name);
  return insert_locked(shard, shard_idx, h, std::move(folded));
}

std::string_view SymbolTable::folded(InternedName id) const noexcept {
  if (!id.valid()) return {};
  const Shard& shard = shards_[id.value() & (kShardCount - 1)];
  const std::uint32_t slot = id.value() >> kShardBits;
  if (slot >= shard.count.load(std::memory_order_acquire)) return {};
  const std::string* name = entry_at(shard, slot).name.load(std::memory_order_acquire);
  return name != nullptr ? std::string_view(*name) : std::string_view{};
}

std::uint64_t SymbolTable::hash(InternedName id) const noexcept {
  if (!id.valid()) return 0;
  const Shard& shard = shards_[id.value() & (kShardCount - 1)];
  const std::uint32_t slot = id.value() >> kShardBits;
  if (slot >= shard.count.load(std::memory_order_acquire)) return 0;
  const Entry& entry = entry_at(shard, slot);
  // Acquire on the name pointer orders the hash load after the writer's
  // hash-then-name publication, so a reused slot never yields a stale mix.
  if (entry.name.load(std::memory_order_acquire) == nullptr) return 0;
  return entry.hash.load(std::memory_order_relaxed);
}

std::size_t SymbolTable::size() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.live.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t SymbolTable::shard_size(std::size_t shard) const noexcept {
  if (shard >= kShardCount) return 0;
  return shards_[shard].live.load(std::memory_order_relaxed);
}

std::uint32_t SymbolTable::advance_tick() noexcept {
  return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::size_t SymbolTable::evict_cold(EpochManager& em, std::uint32_t min_idle_ticks,
                                    std::size_t max_evict,
                                    const std::function<bool(InternedName)>& in_use) {
  if (max_evict == 0) return 0;
  const std::uint32_t tick = tick_.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  for (std::size_t shard_idx = 0; shard_idx < kShardCount && evicted < max_evict;
       ++shard_idx) {
    Shard& shard = shards_[shard_idx];
    std::unique_lock lock(shard.mutex);
    for (auto bucket = shard.index.begin();
         bucket != shard.index.end() && evicted < max_evict;) {
      std::vector<std::uint32_t>& slots = bucket->second;
      for (std::size_t i = 0; i < slots.size() && evicted < max_evict;) {
        const std::uint32_t slot = slots[i];
        Entry& entry = entry_at(shard, slot);
        // Unsigned wrap-safe idleness; entries stamped this tick are hot.
        const std::uint32_t idle = tick - entry.last_use.load(std::memory_order_relaxed);
        const InternedName id(make_id(shard_idx, slot));
        if (idle < min_idle_ticks || (in_use && in_use(id))) {
          ++i;
          continue;
        }
        // Unlink first (no new reader can reach the slot), then retire the
        // string for deferred free, then clear the publication pointer so
        // by-id reads see "evicted". Pinned readers that already loaded
        // the string pointer stay valid until the epoch advances past
        // their pin.
        slots[i] = slots.back();
        slots.pop_back();
        const std::string* name = entry.name.load(std::memory_order_relaxed);
        entry.name.store(nullptr, std::memory_order_release);
        em.retire(const_cast<std::string*>(name));
        shard.free_slots.push_back(slot);
        shard.live.fetch_sub(1, std::memory_order_relaxed);
        ++evicted;
      }
      bucket = slots.empty() ? shard.index.erase(bucket) : std::next(bucket);
    }
  }
  return evicted;
}

}  // namespace pti::util
