// Deterministic pseudo-random generation (SplitMix64), used for simulated
// network jitter, GUID generation and property-test corpora. Deterministic
// seeding keeps every simulation and test reproducible.
#pragma once

#include <cstdint>

namespace pti::util {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5DEECE66DULL) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Modulo bias is negligible for the bounds used here (<< 2^64).
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace pti::util
