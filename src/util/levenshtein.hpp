// Levenshtein edit distance [Levenshtein 1965], cited by the paper as the
// name-conformance metric: two names conform when their distance is 0
// (case-insensitively). The threshold variant supports the paper's
// "wildcards/relaxation could be allowed" extension and the E7 ablation.
#pragma once

#include <cstddef>
#include <string_view>

namespace pti::util {

/// Exact edit distance (insertions, deletions, substitutions all cost 1).
/// `case_insensitive` folds ASCII case before comparing, matching the
/// paper's "names are considered to be case insensitive".
[[nodiscard]] std::size_t levenshtein(std::string_view a, std::string_view b,
                                      bool case_insensitive = true);

/// Early-exit variant: returns true iff distance(a, b) <= max_distance.
/// Runs in O(max_distance * min(|a|,|b|)) via a banded computation, so the
/// common max_distance == 0 case degenerates to a string comparison.
[[nodiscard]] bool levenshtein_within(std::string_view a, std::string_view b,
                                      std::size_t max_distance,
                                      bool case_insensitive = true);

}  // namespace pti::util
