// Endian-stable binary reader/writer used by the binary serializer and the
// simulated wire format. Integers use LEB128 varints (zig-zag for signed),
// which is what makes the binary serializer markedly more compact than the
// SOAP/XML forms — the size gap the paper's hybrid scheme (Fig. 3) exploits.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pti::util {

/// Thrown by ByteReader on truncated or malformed input.
class ByteBufferError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  /// Pre-sizes the underlying buffer; serializer entry points call this so
  /// large payloads don't pay log2(size) vector regrowths.
  void reserve(std::size_t capacity) { bytes_.reserve(capacity); }

  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_varint(std::uint64_t v);
  void write_signed_varint(std::int64_t v);
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  /// Length-prefixed (varint) UTF-8 string.
  void write_string(std::string_view s);
  /// Length-prefixed (varint) raw bytes.
  void write_bytes(std::span<const std::uint8_t> data);
  /// Raw bytes, no prefix.
  void write_raw(std::span<const std::uint8_t> data);

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::uint64_t read_varint();
  [[nodiscard]] std::int64_t read_signed_varint();
  [[nodiscard]] double read_f64();
  [[nodiscard]] bool read_bool() { return read_u8() != 0; }
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<std::uint8_t> read_bytes();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace pti::util
