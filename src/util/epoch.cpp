#include "util/epoch.hpp"

namespace pti::util {

// kIdle marks a slot with no live pin; idle slots never constrain
// min_pinned(). Slots outlive every pin (they are only freed with the
// manager), so a reclaimer may always dereference the all-slots list.
namespace {
constexpr std::uint64_t kIdle = UINT64_MAX;
}  // namespace

struct EpochSlot {
  std::atomic<std::uint64_t> epoch{kIdle};
  EpochSlot* next_all = nullptr;            // all-slots list, immutable once pushed
  std::atomic<EpochSlot*> next_free{nullptr};  // Treiber free-stack link
};

EpochManager::~EpochManager() {
  // No pins can be live at destruction; free everything unconditionally.
  for (const Retired& r : retired_) r.deleter(r.object);
  EpochSlot* slot = all_slots_.load(std::memory_order_acquire);
  while (slot != nullptr) {
    EpochSlot* next = slot->next_all;
    delete slot;
    slot = next;
  }
}

EpochManager& EpochManager::global() {
  static EpochManager manager;
  return manager;
}

EpochSlot* EpochManager::acquire_slot() noexcept {
  // Pop a free slot; allocate one the first few times. seq_cst on the
  // epoch store is deliberate: the pin must be globally visible before the
  // reader's first load from the protected structure, or a concurrent
  // reclaimer could miss it.
  EpochSlot* slot = free_slots_.load(std::memory_order_acquire);
  while (slot != nullptr) {
    EpochSlot* next = slot->next_free.load(std::memory_order_relaxed);
    if (free_slots_.compare_exchange_weak(slot, next, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      slot->epoch.store(epoch_.load(std::memory_order_relaxed), std::memory_order_seq_cst);
      return slot;
    }
  }
  auto* fresh = new EpochSlot();
  fresh->epoch.store(epoch_.load(std::memory_order_relaxed), std::memory_order_seq_cst);
  EpochSlot* head = all_slots_.load(std::memory_order_relaxed);
  do {
    fresh->next_all = head;
  } while (!all_slots_.compare_exchange_weak(head, fresh, std::memory_order_acq_rel,
                                             std::memory_order_relaxed));
  return fresh;
}

void EpochManager::release_slot(EpochSlot* slot) noexcept {
  slot->epoch.store(kIdle, std::memory_order_seq_cst);
  EpochSlot* head = free_slots_.load(std::memory_order_relaxed);
  do {
    slot->next_free.store(head, std::memory_order_relaxed);
  } while (!free_slots_.compare_exchange_weak(head, slot, std::memory_order_acq_rel,
                                              std::memory_order_relaxed));
}

std::uint64_t EpochManager::min_pinned() const noexcept {
  std::uint64_t min = epoch_.load(std::memory_order_seq_cst);
  for (const EpochSlot* slot = all_slots_.load(std::memory_order_acquire); slot != nullptr;
       slot = slot->next_all) {
    const std::uint64_t e = slot->epoch.load(std::memory_order_seq_cst);
    if (e < min) min = e;  // kIdle is UINT64_MAX, never the minimum
  }
  return min;
}

void EpochManager::retire(void* object, void (*deleter)(void*)) {
  const std::uint64_t stamp = epoch_.load(std::memory_order_seq_cst);
  std::lock_guard lock(retired_mutex_);
  retired_.push_back(Retired{object, deleter, stamp});
}

std::uint64_t EpochManager::advance() noexcept {
  return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

std::size_t EpochManager::try_reclaim() {
  advance();
  const std::uint64_t safe_before = min_pinned();
  std::vector<Retired> free_now;
  {
    std::lock_guard lock(retired_mutex_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch < safe_before) {
        free_now.push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Deleters run outside the lock: they may be arbitrarily expensive and
  // must not block concurrent retire() calls.
  for (const Retired& r : free_now) r.deleter(r.object);
  reclaimed_.fetch_add(free_now.size(), std::memory_order_relaxed);
  return free_now.size();
}

bool EpochManager::quiescent() const noexcept {
  for (const EpochSlot* slot = all_slots_.load(std::memory_order_acquire); slot != nullptr;
       slot = slot->next_all) {
    if (slot->epoch.load(std::memory_order_seq_cst) != kIdle) return false;
  }
  return true;
}

std::size_t EpochManager::retired_count() const {
  std::lock_guard lock(retired_mutex_);
  return retired_.size();
}

}  // namespace pti::util
