// RelaxedCounter — a copyable atomic event counter for stats structs.
//
// Stats aggregates (transport::NetStats, transport::ProtocolStats) started
// life as plain uint64 fields read and written from one thread. With the
// async transport, many worker threads bump the same counters while tests
// and monitors read them, so each field becomes a relaxed atomic — but the
// structs must stay copyable value types (benchmarks snapshot them by
// assignment) and comparable against integer literals (EXPECT_EQ in the
// test suites). This wrapper keeps both properties: it converts implicitly
// to uint64_t and copies by load/store.
//
// Relaxed ordering is deliberate: counters are statistics, not
// synchronization. A reader sees torn-free, monotone values; cross-field
// consistency is only guaranteed at quiescent points (after joining the
// threads that produced the traffic).
#pragma once

#include <atomic>
#include <cstdint>

namespace pti::util {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter(std::uint64_t value = 0) noexcept : value_(value) {}
  RelaxedCounter(const RelaxedCounter& other) noexcept : value_(other.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    value_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return get(); }

  std::uint64_t operator++() noexcept {
    return value_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  RelaxedCounter& operator+=(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_;
};

}  // namespace pti::util
