#include "util/byte_buffer.hpp"

#include <bit>
#include <cstring>

namespace pti::util {

void ByteWriter::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v));
  write_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    write_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  write_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::write_signed_varint(std::int64_t v) {
  // Zig-zag encoding keeps small negative numbers short.
  write_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::write_string(std::string_view s) {
  write_varint(s.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  bytes_.insert(bytes_.end(), p, p + s.size());
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> data) {
  write_varint(data.size());
  write_raw(data);
}

void ByteWriter::write_raw(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw ByteBufferError("byte buffer truncated: need " + std::to_string(n) +
                          " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                          static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    require(1);
    const std::uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7E) != 0) {
      throw ByteBufferError("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw ByteBufferError("varint too long");
  }
}

std::int64_t ByteReader::read_signed_varint() {
  const std::uint64_t z = read_varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double ByteReader::read_f64() {
  return std::bit_cast<double>(read_u64());
}

std::string ByteReader::read_string() {
  const std::uint64_t n = read_varint();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> ByteReader::read_bytes() {
  const std::uint64_t n = read_varint();
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace pti::util
