#include "util/string_util.hpp"

#include <algorithm>

namespace pti::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(to_lower(c));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (to_lower(a[i]) != to_lower(b[i])) return false;
  }
  return true;
}

bool iless(std::string_view a, std::string_view b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = to_lower(a[i]);
    const char cb = to_lower(b[i]);
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t k = 0; k < needle.size(); ++k) {
      if (to_lower(haystack[i + k]) != to_lower(needle[k])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::vector<std::string> identifier_tokens(std::string_view identifier) {
  std::vector<std::string> tokens;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  const auto is_upper = [](char c) { return c >= 'A' && c <= 'Z'; };
  const auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
  for (std::size_t i = 0; i < identifier.size(); ++i) {
    const char c = identifier[i];
    if (c == '_' || c == '-' || c == ' ') {
      flush();
      continue;
    }
    // New hump: an upper-case letter starts a token, except inside an
    // acronym run ("XMLParser" -> "xml", "parser").
    if (is_upper(c)) {
      const bool prev_lower = i > 0 && !is_upper(identifier[i - 1]) &&
                              !is_digit(identifier[i - 1]) && identifier[i - 1] != '_';
      const bool next_lower = i + 1 < identifier.size() && !is_upper(identifier[i + 1]) &&
                              !is_digit(identifier[i + 1]) && identifier[i + 1] != '_';
      if (prev_lower || (next_lower && !current.empty())) flush();
    } else if (is_digit(c)) {
      if (!current.empty() && !is_digit(current.back())) flush();
    } else if (!current.empty() && is_digit(current.back())) {
      flush();
    }
    current.push_back(to_lower(c));
  }
  flush();
  return tokens;
}

bool token_subset_match(std::string_view a, std::string_view b) {
  const std::vector<std::string> ta = identifier_tokens(a);
  const std::vector<std::string> tb = identifier_tokens(b);
  const auto subset = [](const std::vector<std::string>& small,
                         const std::vector<std::string>& big) {
    for (const auto& t : small) {
      if (std::find(big.begin(), big.end(), t) == big.end()) return false;
    }
    return true;
  };
  if (ta.empty() || tb.empty()) return ta.empty() && tb.empty();
  return subset(ta, tb) || subset(tb, ta);
}

bool wildcard_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative two-pointer algorithm with backtracking on the last `*`.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || to_lower(pattern[p]) == to_lower(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace pti::util
