#include "util/levenshtein.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/string_util.hpp"

namespace pti::util {

namespace {

char fold(char c, bool ci) noexcept { return ci ? to_lower(c) : c; }

}  // namespace

std::size_t levenshtein(std::string_view a, std::string_view b, bool case_insensitive) {
  if (a.size() > b.size()) std::swap(a, b);  // keep the row over the shorter string
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;

  std::vector<std::size_t> row(n + 1);
  for (std::size_t i = 0; i <= n; ++i) row[i] = i;

  for (std::size_t j = 1; j <= m; ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    const char cb = fold(b[j - 1], case_insensitive);
    for (std::size_t i = 1; i <= n; ++i) {
      const std::size_t subst =
          prev_diag + (fold(a[i - 1], case_insensitive) == cb ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
    }
  }
  return row[n];
}

bool levenshtein_within(std::string_view a, std::string_view b,
                        std::size_t max_distance, bool case_insensitive) {
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (m - n > max_distance) return false;
  if (max_distance == 0) {
    return case_insensitive ? iequals(a, b) : a == b;
  }

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> row(n + 1, kInf);
  for (std::size_t i = 0; i <= std::min(n, max_distance); ++i) row[i] = i;

  for (std::size_t j = 1; j <= m; ++j) {
    // Only cells within the diagonal band |i - j| <= max_distance matter.
    const std::size_t lo = (j > max_distance) ? j - max_distance : 1;
    const std::size_t hi = std::min(n, j + max_distance);
    std::size_t prev_diag = row[lo - 1];
    row[lo - 1] = (lo == 1) ? j : kInf;
    const char cb = fold(b[j - 1], case_insensitive);
    std::size_t row_min = row[lo - 1];
    for (std::size_t i = lo; i <= hi; ++i) {
      const std::size_t subst =
          prev_diag + (fold(a[i - 1], case_insensitive) == cb ? 0 : 1);
      prev_diag = row[i];
      const std::size_t up = (i <= j + max_distance - 1) ? row[i] : kInf;
      const std::size_t left = row[i - 1];
      row[i] = std::min({up + 1, left + 1, subst});
      row_min = std::min(row_min, row[i]);
    }
    if (hi < n) row[hi + 1] = kInf;  // cell leaving the band
    if (row_min > max_distance) return false;
  }
  return row[n] <= max_distance;
}

}  // namespace pti::util
