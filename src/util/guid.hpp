// 128-bit globally unique identifiers for type identity.
//
// The paper (Section 5, footnote 5) relies on the platform's notion of type
// identity — .NET provides 128-bit GUIDs. Equality of GUIDs is the cheap
// "same type" shortcut taken before any structural comparison.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace pti::util {

class Rng;  // forward declaration (rng.hpp)

/// A 128-bit identifier rendered in the canonical
/// `xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx` hexadecimal form.
class Guid {
 public:
  /// The nil GUID (all zero); used as "identity unknown".
  constexpr Guid() noexcept = default;
  constexpr Guid(std::uint64_t hi, std::uint64_t lo) noexcept : hi_(hi), lo_(lo) {}

  /// Deterministic identity derived from a qualified type name. Two peers
  /// that independently register the same (namespace-qualified) name obtain
  /// the same identity, mirroring how .NET derives GUIDs for types.
  [[nodiscard]] static Guid from_name(std::string_view qualified_name) noexcept;

  /// Fresh random identity drawn from the given deterministic generator.
  [[nodiscard]] static Guid random(Rng& rng) noexcept;

  /// Parses the canonical form; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Guid> parse(std::string_view text) noexcept;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_nil() const noexcept { return hi_ == 0 && lo_ == 0; }
  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  friend constexpr auto operator<=>(const Guid&, const Guid&) noexcept = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace pti::util

template <>
struct std::hash<pti::util::Guid> {
  std::size_t operator()(const pti::util::Guid& g) const noexcept {
    return static_cast<std::size_t>(g.hi() ^ (g.lo() * 0x9e3779b97f4a7c15ULL));
  }
};
