// FNV-1a hashing, used for deterministic type identity (GUID-from-name),
// conformance-cache keys and content fingerprints.
#pragma once

#include <cstdint>
#include <string_view>

namespace pti::util {

inline constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data,
                                              std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime64;
  }
  return h;
}

/// Combines two hashes (boost::hash_combine-style, 64-bit constants).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace pti::util
