// String helpers shared across the PTI library.
//
// The conformance rules of the paper (Section 4.2) compare type and member
// names case-insensitively, so case-folding primitives live here and are
// used consistently by the registry, the conformance checker and the XML
// type-description format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pti::util {

/// ASCII lower-casing (type names in the model are ASCII identifiers).
[[nodiscard]] constexpr char to_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
[[nodiscard]] std::string to_lower(std::string_view s);

/// Case-insensitive equality, the comparison used for name conformance.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive less-than, suitable as a map comparator.
[[nodiscard]] bool iless(std::string_view a, std::string_view b) noexcept;

/// Transparent case-insensitive comparator for ordered containers.
struct ICaseLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return iless(a, b);
  }
};

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Splits on a single character; empty segments are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator string.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Glob-style match with `*` (any run) and `?` (any one char),
/// case-insensitive. Used by the optional wildcard extension to name
/// conformance that the paper mentions ("wildcards could be allowed").
[[nodiscard]] bool wildcard_match(std::string_view pattern, std::string_view text) noexcept;

/// Case-insensitive substring test.
[[nodiscard]] bool icontains(std::string_view haystack, std::string_view needle) noexcept;

/// Splits an identifier into lower-cased word tokens on camelCase humps,
/// underscores, dashes and digit boundaries:
///   "getPersonName" -> {"get", "person", "name"}
///   "set_name"      -> {"set", "name"}
/// Used by the member-name conformance rule (a target member name conforms
/// to a source member name when one token set includes the other — the
/// reconstruction of the paper's lenient method-name matching that makes
/// `getName` interoperate with `getPersonName`).
[[nodiscard]] std::vector<std::string> identifier_tokens(std::string_view identifier);

/// True when every token of `a` appears among the tokens of `b` or vice
/// versa (set inclusion either way).
[[nodiscard]] bool token_subset_match(std::string_view a, std::string_view b);

}  // namespace pti::util
