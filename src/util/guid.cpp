#include "util/guid.hpp"

#include <array>
#include <cstdio>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace pti::util {

namespace {

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Guid Guid::from_name(std::string_view qualified_name) noexcept {
  // Case-folded so that identity matches the case-insensitive name model.
  std::uint64_t hi = kFnvOffset64;
  std::uint64_t lo = fnv1a64("pti:guid:v1");
  for (char c : qualified_name) {
    const auto b = static_cast<std::uint8_t>(to_lower(c));
    hi = (hi ^ b) * kFnvPrime64;
    lo = (lo ^ b) * kFnvPrime64;
    lo = hash_combine(lo, hi);
  }
  // Avoid accidentally producing the nil GUID for some exotic name.
  if (hi == 0 && lo == 0) lo = 1;
  return Guid{hi, lo};
}

Guid Guid::random(Rng& rng) noexcept {
  std::uint64_t hi = rng.next_u64();
  std::uint64_t lo = rng.next_u64();
  if (hi == 0 && lo == 0) lo = 1;
  return Guid{hi, lo};
}

std::optional<Guid> Guid::parse(std::string_view text) noexcept {
  // Canonical layout: 8-4-4-4-12 hex digits with dashes at 8, 13, 18, 23.
  if (text.size() != 36) return std::nullopt;
  std::uint64_t hi = 0, lo = 0;
  int nibble_index = 0;
  for (std::size_t i = 0; i < 36; ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (text[i] != '-') return std::nullopt;
      continue;
    }
    const int d = hex_digit(text[i]);
    if (d < 0) return std::nullopt;
    if (nibble_index < 16) {
      hi = (hi << 4) | static_cast<std::uint64_t>(d);
    } else {
      lo = (lo << 4) | static_cast<std::uint64_t>(d);
    }
    ++nibble_index;
  }
  return Guid{hi, lo};
}

std::string Guid::to_string() const {
  std::array<char, 37> buf{};
  std::snprintf(buf.data(), buf.size(), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi_ >> 32),
                static_cast<unsigned>((hi_ >> 16) & 0xFFFF),
                static_cast<unsigned>(hi_ & 0xFFFF),
                static_cast<unsigned>(lo_ >> 48),
                static_cast<unsigned long long>(lo_ & 0xFFFFFFFFFFFFULL));
  return std::string(buf.data(), 36);
}

}  // namespace pti::util
