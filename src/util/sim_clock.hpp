// Virtual time for the simulated network. All protocol latencies are
// expressed in virtual nanoseconds so simulations are deterministic and
// independent of the host machine.
#pragma once

#include <cstdint>

namespace pti::util {

class SimClock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const noexcept { return now_ns_; }

  void advance_ns(std::uint64_t delta) noexcept { now_ns_ += delta; }

  /// Moves the clock forward to `t` if `t` is in the future.
  void advance_to_ns(std::uint64_t t) noexcept {
    if (t > now_ns_) now_ns_ = t;
  }

 private:
  std::uint64_t now_ns_ = 0;
};

}  // namespace pti::util
