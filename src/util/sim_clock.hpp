// Virtual time for the simulated network. All protocol latencies are
// expressed in virtual nanoseconds so simulations are deterministic and
// independent of the host machine.
//
// Thread safety: advances are relaxed atomic read-modify-writes, so any
// number of threads may charge time concurrently (the final reading is the
// deterministic sum of all charges regardless of interleaving) and readers
// never race writers. Ordering between a charge and other memory is the
// caller's business — the clock only promises a torn-free monotone count.
#pragma once

#include <atomic>
#include <cstdint>

namespace pti::util {

class SimClock {
 public:
  SimClock() noexcept = default;
  SimClock(const SimClock& other) noexcept : now_ns_(other.now_ns()) {}
  SimClock& operator=(const SimClock& other) noexcept {
    now_ns_.store(other.now_ns(), std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return now_ns_.load(std::memory_order_relaxed);
  }

  void advance_ns(std::uint64_t delta) noexcept {
    now_ns_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Moves the clock forward to `t` if `t` is in the future.
  void advance_to_ns(std::uint64_t t) noexcept {
    std::uint64_t current = now_ns_.load(std::memory_order_relaxed);
    while (t > current &&
           !now_ns_.compare_exchange_weak(current, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> now_ns_{0};
};

}  // namespace pti::util
