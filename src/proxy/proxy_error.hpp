#pragma once

#include "util/error.hpp"

namespace pti::proxy {

class ProxyError : public Error {
 public:
  using Error::Error;
};

/// Attempt to wrap a source object as a target type it does not conform to.
class NonConformantError : public ProxyError {
 public:
  using ProxyError::ProxyError;
};

}  // namespace pti::proxy
