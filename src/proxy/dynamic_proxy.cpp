#include "proxy/dynamic_proxy.hpp"

#include <vector>

#include "proxy/proxy_error.hpp"
#include "reflect/primitives.hpp"

namespace pti::proxy {

using conform::CheckResult;
using conform::ConformanceKind;
using conform::ConformancePlan;
using conform::MethodMapping;
using reflect::DynObject;
using reflect::TypeDescription;
using reflect::Value;
using reflect::ValueKind;

namespace {

constexpr int kMaxProxyDepth = 64;

}  // namespace

bool ProxyFactory::is_proxy(const DynObject& obj) noexcept {
  return obj.has_field(kProxySourceField);
}

std::shared_ptr<DynObject> ProxyFactory::unwrap(std::shared_ptr<DynObject> obj) const {
  while (obj && is_proxy(*obj)) {
    obj = obj->get(kProxySourceField).as_object();
  }
  return obj;
}

std::shared_ptr<DynObject> ProxyFactory::wrap(std::shared_ptr<DynObject> source,
                                              const TypeDescription& target_type) {
  if (!source) throw ProxyError("cannot wrap a null object");
  const TypeDescription* source_desc = domain_.registry().find(source->type_name());
  if (source_desc == nullptr) {
    throw ProxyError("no description registered for source type '" + source->type_name() +
                     "'");
  }
  const CheckResult result = checker_.check(*source_desc, target_type);
  if (!result.conformant) {
    std::string detail;
    for (const auto& f : result.failures) detail += "\n  - " + f;
    throw NonConformantError("type '" + source->type_name() + "' does not conform to '" +
                             target_type.qualified_name() + "'" + detail);
  }
  if (result.plan.is_passthrough()) {
    return source;  // no adaptation needed, use the object directly
  }
  // Synthetic proxy object: nil GUID marks it as not being a "real"
  // instance of the target type.
  auto proxy_obj = DynObject::make(target_type.qualified_name(), util::Guid{});
  proxy_obj->set(kProxySourceField, Value(std::move(source)));
  return proxy_obj;
}

std::shared_ptr<DynObject> ProxyFactory::wrap(std::shared_ptr<DynObject> source,
                                              std::string_view target_type_name) {
  const TypeDescription* target = domain_.registry().find(target_type_name);
  if (target == nullptr) {
    throw ProxyError("no description registered for target type '" +
                     std::string(target_type_name) + "'");
  }
  return wrap(std::move(source), *target);
}

const ConformancePlan ProxyFactory::plan_for(const DynObject& proxy_obj,
                                             const DynObject& source_obj) {
  const TypeDescription* source_desc = domain_.registry().find(source_obj.type_name());
  const TypeDescription* target_desc = domain_.registry().find(proxy_obj.type_name());
  if (source_desc == nullptr || target_desc == nullptr) {
    throw ProxyError("proxy types vanished from the registry ('" + source_obj.type_name() +
                     "' as '" + proxy_obj.type_name() + "')");
  }
  CheckResult result = checker_.check(*source_desc, *target_desc);
  if (!result.conformant) {
    throw NonConformantError("conformance of '" + source_obj.type_name() + "' to '" +
                             proxy_obj.type_name() + "' no longer holds");
  }
  return std::move(result.plan);
}

Value ProxyFactory::invoke(const std::shared_ptr<DynObject>& obj,
                           std::string_view method_name, reflect::Args args) {
  return invoke_depth(obj, method_name, args, 0);
}

Value ProxyFactory::invoke_depth(const std::shared_ptr<DynObject>& obj,
                                 std::string_view method_name, reflect::Args args,
                                 int depth) {
  if (!obj) throw ProxyError("cannot invoke on a null object");
  if (depth > kMaxProxyDepth) {
    throw ProxyError("proxy nesting exceeds " + std::to_string(kMaxProxyDepth) +
                     " levels (cyclic wrapping?)");
  }

  if (remote_ != nullptr && remote_->is_remote_ref(*obj)) {
    return remote_->invoke_remote(*obj, method_name, args);
  }

  if (!is_proxy(*obj)) {
    return domain_.invoke(*obj, method_name, args);
  }

  const auto source = obj->get(kProxySourceField).as_object();
  const ConformancePlan plan = plan_for(*obj, *source);

  const MethodMapping* mapping = plan.find_method(method_name, args.size());
  if (mapping == nullptr) {
    throw ProxyError("target type '" + obj->type_name() + "' has no method '" +
                     std::string(method_name) + "' with arity " +
                     std::to_string(args.size()) + " in the conformance plan");
  }

  // Locate declared parameter/namespace info on both sides for adaptation.
  const TypeDescription* source_desc = domain_.registry().find(source->type_name());
  const TypeDescription* target_desc = domain_.registry().find(obj->type_name());
  const reflect::MethodDescription* source_method =
      source_desc->find_method(mapping->source_name, mapping->arity);
  if (source_method == nullptr) {
    throw ProxyError("conformance plan maps to unknown source method '" +
                     mapping->source_name + "'");
  }

  // Permute + adapt arguments: source parameter i receives the target-side
  // argument arg_permutation[i].
  std::vector<Value> source_args;
  source_args.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::size_t target_index = mapping->arg_permutation[i];
    source_args.push_back(adapt_argument(args[target_index],
                                         source_method->params[i].type_name,
                                         source_desc->namespace_name(), depth));
  }

  Value result = invoke_depth(source, mapping->source_name, source_args, depth + 1);
  return adapt_result(std::move(result), mapping->target_return_type,
                      target_desc->namespace_name());
}

Value ProxyFactory::adapt_argument(Value value, std::string_view source_param_type,
                                   std::string_view source_ns, int depth) {
  if (value.kind() != ValueKind::Object) return value;
  const auto& obj = value.as_object();
  if (!obj) return value;

  const TypeDescription* param_desc =
      domain_.registry().resolve(source_param_type, source_ns);
  if (param_desc == nullptr || param_desc->kind() == reflect::TypeKind::Primitive) {
    return value;  // untyped/object-typed parameter: pass as-is
  }

  // If the argument is itself a proxy whose real object already satisfies
  // the parameter nominally, strip the wrapper instead of stacking.
  if (is_proxy(*obj)) {
    auto real = obj->get(kProxySourceField).as_object();
    const TypeDescription* real_desc = domain_.registry().find(real->type_name());
    if (real_desc != nullptr) {
      const CheckResult r = checker_.check(*real_desc, *param_desc);
      if (r.conformant && r.plan.is_passthrough()) return Value(std::move(real));
    }
  }

  const TypeDescription* arg_desc = domain_.registry().find(obj->type_name());
  if (arg_desc == nullptr) return value;
  const CheckResult r = checker_.check(*arg_desc, *param_desc);
  if (!r.conformant || r.plan.is_passthrough()) {
    return value;  // either fine as-is, or let the callee fail loudly
  }
  // Deep mismatch: reverse-wrap the target-side argument so the source
  // implementation can drive it through its own expected interface.
  (void)depth;
  return Value(wrap(obj, *param_desc));
}

Value ProxyFactory::adapt_result(Value value, std::string_view target_return_type,
                                 std::string_view target_ns) {
  if (value.kind() != ValueKind::Object) return value;
  const auto& obj = value.as_object();
  if (!obj) return value;

  const TypeDescription* ret_desc =
      domain_.registry().resolve(target_return_type, target_ns);
  if (ret_desc == nullptr || ret_desc->kind() == reflect::TypeKind::Primitive) {
    return value;
  }
  const TypeDescription* obj_desc = domain_.registry().find(obj->type_name());
  if (obj_desc == nullptr) return value;
  const CheckResult r = checker_.check(*obj_desc, *ret_desc);
  if (!r.conformant || r.plan.is_passthrough()) return value;
  // Implicit-only conformance: the caller expects the target return type,
  // so wrap — the recursive case of the paper's deep matching.
  return Value(wrap(obj, *ret_desc));
}

Value ProxyFactory::get_field(const std::shared_ptr<DynObject>& obj,
                              std::string_view target_field) {
  if (!obj) throw ProxyError("cannot read a field of a null object");
  if (!is_proxy(*obj)) return obj->get(target_field);

  const auto source = obj->get(kProxySourceField).as_object();
  const ConformancePlan plan = plan_for(*obj, *source);
  const conform::FieldMapping* mapping = plan.find_field(target_field);
  if (mapping == nullptr) {
    throw ProxyError("no field mapping for '" + std::string(target_field) + "' on '" +
                     obj->type_name() + "'");
  }
  Value value = get_field(source, mapping->source_field);
  const TypeDescription* target_desc = domain_.registry().find(obj->type_name());
  return adapt_result(std::move(value), mapping->target_type,
                      target_desc != nullptr ? target_desc->namespace_name() : "");
}

void ProxyFactory::set_field(const std::shared_ptr<DynObject>& obj,
                             std::string_view target_field, Value value) {
  if (!obj) throw ProxyError("cannot write a field of a null object");
  if (!is_proxy(*obj)) {
    obj->set(target_field, std::move(value));
    return;
  }
  const auto source = obj->get(kProxySourceField).as_object();
  const ConformancePlan plan = plan_for(*obj, *source);
  const conform::FieldMapping* mapping = plan.find_field(target_field);
  if (mapping == nullptr) {
    throw ProxyError("no field mapping for '" + std::string(target_field) + "' on '" +
                     obj->type_name() + "'");
  }
  set_field(source, mapping->source_field, std::move(value));
}

}  // namespace pti::proxy
