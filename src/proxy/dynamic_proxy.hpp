// Dynamic proxies (paper Section 6, "to deal with such conformant objects,
// dynamic proxies are used").
//
// A proxy is the artifact that lets a received object of type S be *used*
// as the locally expected type T' once S ≼is T' has been established: it
// renames methods, permutes arguments, and — for deep matches — wraps
// nested objects in further proxies ("this mismatch increases with the
// depth of the matching of the two types", Section 6.2).
//
// Representation: a proxy IS a DynObject whose type is the *target* type
// and whose single hidden field `__pti.source` holds the wrapped source
// object. This keeps proxies first-class citizens of the value model: they
// can be stored in fields, passed as arguments and returned from methods,
// exactly like .NET RealProxy instances masquerade as their transparent
// proxy. All invocation goes through ProxyFactory::invoke, the equivalent
// of the platform's transparent-proxy dispatch:
//
//   * plain object        -> direct dispatch through the local Domain,
//   * proxy object        -> plan-driven adaptation, then recursion on the
//                            wrapped source,
//   * remote reference    -> delegated to the installed RemoteInvoker
//                            (the remoting layer plugs in here, giving the
//                            paper's dynamic-proxy-over-remoting-proxy
//                            stacking for pass-by-reference).
#pragma once

#include <memory>
#include <string_view>

#include "conform/conformance_checker.hpp"
#include "reflect/domain.hpp"
#include "reflect/dyn_object.hpp"

namespace pti::proxy {

/// Hidden field holding the wrapped source object inside a proxy object.
inline constexpr std::string_view kProxySourceField = "__pti.source";

/// Hook through which the remoting layer handles invocations on remote
/// references (see remoting/remote_ref.hpp).
class RemoteInvoker {
 public:
  virtual ~RemoteInvoker() = default;
  [[nodiscard]] virtual bool is_remote_ref(const reflect::DynObject& obj) const noexcept = 0;
  virtual reflect::Value invoke_remote(const reflect::DynObject& ref,
                                       std::string_view method_name,
                                       reflect::Args args) = 0;
};

class ProxyFactory {
 public:
  /// `domain` supplies local code and the registry of descriptions;
  /// `checker` supplies conformance verdicts and plans (its cache makes
  /// per-invocation plan lookups cheap).
  ProxyFactory(reflect::Domain& domain, conform::ConformanceChecker& checker)
      : domain_(domain), checker_(checker) {}

  void set_remote_invoker(RemoteInvoker* invoker) noexcept { remote_ = invoker; }

  /// Wraps `source` so it can be used as `target_type`. Returns `source`
  /// unchanged when no adaptation is needed (identity / equivalence /
  /// explicit subtyping — the cases where .NET needs no wrapper either).
  /// Throws NonConformantError when source does not conform.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> wrap(
      std::shared_ptr<reflect::DynObject> source,
      const reflect::TypeDescription& target_type);
  [[nodiscard]] std::shared_ptr<reflect::DynObject> wrap(
      std::shared_ptr<reflect::DynObject> source, std::string_view target_type_name);

  [[nodiscard]] static bool is_proxy(const reflect::DynObject& obj) noexcept;

  /// Removes all proxy layers, yielding the underlying real object (used
  /// before serialization: the wire carries real state, never wrappers).
  [[nodiscard]] std::shared_ptr<reflect::DynObject> unwrap(
      std::shared_ptr<reflect::DynObject> obj) const;

  /// Universal invocation: target-side method name and arguments in, value
  /// out. Object-valued results that only implicitly conform to the
  /// declared target return type come back wrapped in a further proxy;
  /// object-valued arguments are unwrapped or reverse-wrapped as the
  /// source's parameter types require.
  reflect::Value invoke(const std::shared_ptr<reflect::DynObject>& obj,
                        std::string_view method_name, reflect::Args args);

  /// Target-side field access through the plan's field mapping.
  [[nodiscard]] reflect::Value get_field(const std::shared_ptr<reflect::DynObject>& obj,
                                         std::string_view target_field);
  void set_field(const std::shared_ptr<reflect::DynObject>& obj,
                 std::string_view target_field, reflect::Value value);

  [[nodiscard]] reflect::Domain& domain() noexcept { return domain_; }
  [[nodiscard]] conform::ConformanceChecker& checker() noexcept { return checker_; }

 private:
  reflect::Value invoke_depth(const std::shared_ptr<reflect::DynObject>& obj,
                              std::string_view method_name, reflect::Args args, int depth);

  /// The (cached) plan for a proxy object; throws if it disappeared.
  const conform::ConformancePlan plan_for(const reflect::DynObject& proxy_obj,
                                          const reflect::DynObject& source_obj);

  /// Adapts one target-side argument value for a source-side parameter.
  reflect::Value adapt_argument(reflect::Value value, std::string_view source_param_type,
                                std::string_view source_ns, int depth);

  /// Adapts a source-side result to the declared target return type.
  reflect::Value adapt_result(reflect::Value value, std::string_view target_return_type,
                              std::string_view target_ns);

  reflect::Domain& domain_;
  conform::ConformanceChecker& checker_;
  RemoteInvoker* remote_ = nullptr;
};

}  // namespace pti::proxy
