// Compact binary object serialization, modelled on .NET's BinaryFormatter:
// tagged values, varint integers, a string pool and object back-references
// (so shared references and cycles round-trip). This is the cheap, dense
// payload encoding in the paper's hybrid scheme.
//
// Wire layout:
//   magic "PTIB", version u8, then one encoded value.
//   value := tag u8, payload
//     Null                       —
//     Bool                       u8
//     Int32/Int64                signed varint
//     Float64                    8 bytes (IEEE bits)
//     String                     pooled string
//     List                       count varint, values...
//     Object (first occurrence)  marker 0, type name (pooled), guid 16B,
//                                field count, (field name pooled, value)...
//     Object (back-reference)    marker = object id
//   pooled string := varint; 0 => new (length-prefixed bytes follow, id =
//   next index), k>0 => reference to the k-th string seen.
#pragma once

#include "serial/object_serializer.hpp"

namespace pti::serial {

class BinarySerializer final : public ObjectSerializer {
 public:
  [[nodiscard]] std::string_view encoding() const noexcept override { return "binary"; }
  [[nodiscard]] std::vector<std::uint8_t> serialize(const reflect::Value& root) override;
  [[nodiscard]] reflect::Value deserialize(std::span<const std::uint8_t> data) override;
};

}  // namespace pti::serial
