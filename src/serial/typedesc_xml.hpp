// Type descriptions as XML messages (paper Section 5.2).
//
// This is the exact artifact the optimistic protocol ships when a peer
// asks "what does your type look like?": a flat, non-recursive description
// carrying identity, supertypes, fields, method and constructor signatures,
// plus the assembly name and download path needed to fetch the code later.
//
// Format:
//   <TypeDescription name="Person" namespace="teamA" kind="class"
//                    guid="..." assembly="teamA.people"
//                    downloadPath="net://peerA/teamA.people">
//     <Superclass name="object"/>
//     <Interface name="teamA.INamed"/>
//     <Field name="name" type="string" visibility="private"/>
//     <Method name="getName" returns="string" visibility="public">
//       <Param name="" type=""/> ...
//     </Method>
//     <Constructor visibility="public"> <Param .../> </Constructor>
//   </TypeDescription>
#pragma once

#include <string>
#include <string_view>

#include "reflect/type_description.hpp"
#include "xml/xml_node.hpp"

namespace pti::serial {

[[nodiscard]] xml::XmlNode type_description_to_xml(const reflect::TypeDescription& d);
[[nodiscard]] reflect::TypeDescription type_description_from_xml(const xml::XmlNode& node);

/// Whole-string convenience wrappers (serialize with declaration, parse).
[[nodiscard]] std::string type_description_to_string(const reflect::TypeDescription& d,
                                                     bool indent = false);
[[nodiscard]] reflect::TypeDescription type_description_from_string(std::string_view text);

}  // namespace pti::serial
