// SOAP-style object serialization (SOAP 1.1 Section-5 encoding shape):
// an Envelope/Body wrapper where every distinct object becomes an
// independent <multiRef id="ref-N"> element and every object-valued slot
// is an href="#ref-N" pointer. Shared references and cycles therefore
// round-trip exactly — the property .NET's SoapFormatter provides and the
// paper relies on for pass-by-value semantics of real object graphs.
//
// Deliberately verbose (namespaced wrapper elements, per-object multiRef
// blocks): the paper's measurements hinge on SOAP serialization being the
// expensive, chatty mechanism relative to binary.
#pragma once

#include "serial/object_serializer.hpp"
#include "xml/xml_node.hpp"

namespace pti::serial {

class SoapSerializer final : public ObjectSerializer {
 public:
  [[nodiscard]] std::string_view encoding() const noexcept override { return "soap"; }
  [[nodiscard]] std::vector<std::uint8_t> serialize(const reflect::Value& root) override;
  [[nodiscard]] reflect::Value deserialize(std::span<const std::uint8_t> data) override;

  /// DOM-level entry points (used by the envelope to nest payloads inline).
  [[nodiscard]] xml::XmlNode to_xml(const reflect::Value& root);
  [[nodiscard]] reflect::Value from_xml(const xml::XmlNode& envelope);
};

}  // namespace pti::serial
