#include "serial/xml_object_serializer.hpp"

#include <set>

#include "reflect/dyn_object.hpp"
#include "serial/serial_error.hpp"
#include "serial/value_xml_common.hpp"
#include "util/guid.hpp"
#include "xml/xml_parser.hpp"
#include "xml/xml_writer.hpp"

namespace pti::serial {

using reflect::DynObject;
using reflect::Value;
using reflect::ValueKind;

namespace {

class Writer {
 public:
  explicit Writer(reflect::TypeResolver* resolver) : resolver_(resolver) {}

  void write_value(xml::XmlNode& node, const Value& value) {
    switch (value.kind()) {
      case ValueKind::Object: {
        const auto& obj = value.as_object();
        if (!obj) {
          node.set_attr("kind", "null");
          return;
        }
        node.set_attr("kind", "object");
        write_object(node.add_child("object"), *obj);
        return;
      }
      case ValueKind::List: {
        node.set_attr("kind", "list");
        for (const Value& item : value.as_list()) {
          write_value(node.add_child("item"), item);
        }
        return;
      }
      default:
        detail::write_scalar(node, value);
    }
  }

  void write_object(xml::XmlNode& node, const DynObject& obj) {
    // Cycle detection: XmlSerializer-style serializers reject circular
    // graphs outright.
    if (!on_path_.insert(&obj).second) {
      throw SerialError("XML serialization cannot encode cyclic object graphs (type '" +
                        obj.type_name() + "')");
    }
    node.set_attr("type", obj.type_name());
    if (!obj.type_guid().is_nil()) node.set_attr("guid", obj.type_guid().to_string());

    const reflect::TypeDescription* desc =
        resolver_ != nullptr ? resolver_->resolve(obj.type_name(), "") : nullptr;
    for (const auto& [field_name, field_value] : obj.fields()) {
      if (desc != nullptr) {
        const reflect::FieldDescription* fd = desc->find_field(field_name);
        if (fd != nullptr && fd->visibility != reflect::Visibility::Public) {
          continue;  // public state only, like XmlSerializer
        }
      }
      auto& fn = node.add_child("field");
      fn.set_attr("name", field_name);
      write_value(fn, field_value);
    }
    on_path_.erase(&obj);
  }

 private:
  reflect::TypeResolver* resolver_;
  std::set<const DynObject*> on_path_;
};

class Reader {
 public:
  Value read_value(const xml::XmlNode& node) {
    const std::string_view kind = node.required_attr("kind");
    if (kind == "object") {
      return Value(read_object(node.required_child("object")));
    }
    if (kind == "list") {
      Value::List items;
      for (const xml::XmlNode* item : node.children_named("item")) {
        items.push_back(read_value(*item));
      }
      return Value(std::move(items));
    }
    return detail::read_scalar(kind, node);
  }

  std::shared_ptr<DynObject> read_object(const xml::XmlNode& node) {
    util::Guid guid;
    if (auto g = node.attr("guid")) {
      const auto parsed = util::Guid::parse(*g);
      if (!parsed) throw SerialError("malformed guid '" + std::string(*g) + "'");
      guid = *parsed;
    }
    auto obj = DynObject::make(std::string(node.required_attr("type")), guid);
    for (const xml::XmlNode* f : node.children_named("field")) {
      obj->set(f->required_attr("name"), read_value(*f));
    }
    return obj;
  }
};

}  // namespace

xml::XmlNode XmlObjectSerializer::to_xml(const Value& root) {
  xml::XmlNode node("value");
  Writer writer(resolver_);
  writer.write_value(node, root);
  return node;
}

Value XmlObjectSerializer::from_xml(const xml::XmlNode& root) {
  Reader reader;
  return reader.read_value(root);
}

std::vector<std::uint8_t> XmlObjectSerializer::serialize(const Value& root) {
  const std::string text = xml::write(to_xml(root));
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

Value XmlObjectSerializer::deserialize(std::span<const std::uint8_t> data) {
  const std::string_view text(reinterpret_cast<const char*>(data.data()), data.size());
  return from_xml(xml::parse(text));
}

}  // namespace pti::serial
