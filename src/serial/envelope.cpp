#include "serial/envelope.hpp"

#include <set>

#include "reflect/dyn_object.hpp"
#include "serial/serial_error.hpp"
#include "util/base64.hpp"
#include "util/string_util.hpp"
#include "xml/xml_parser.hpp"
#include "xml/xml_writer.hpp"

namespace pti::serial {

using reflect::DynObject;
using reflect::Value;
using reflect::ValueKind;

namespace {

[[nodiscard]] bool is_xml_encoding(std::string_view encoding) noexcept {
  return util::iequals(encoding, "xml") || util::iequals(encoding, "soap");
}

void collect(const Value& v, std::set<const DynObject*>& seen,
             std::vector<std::string>& out) {
  switch (v.kind()) {
    case ValueKind::Object: {
      const auto& obj = v.as_object();
      if (!obj || !seen.insert(obj.get()).second) return;
      out.push_back(obj->type_name());
      for (const auto& [name, field] : obj->fields()) collect(field, seen, out);
      return;
    }
    case ValueKind::List:
      for (const Value& item : v.as_list()) collect(item, seen, out);
      return;
    default:
      return;
  }
}

}  // namespace

std::vector<std::string> collect_type_names(const Value& root) {
  std::set<const DynObject*> seen;
  std::vector<std::string> names;
  collect(root, seen, names);
  // Deduplicate preserving first-occurrence order.
  std::set<std::string, util::ICaseLess> unique;
  std::vector<std::string> out;
  for (auto& n : names) {
    if (unique.insert(n).second) out.push_back(n);
  }
  return out;
}

xml::XmlNode Envelope::to_xml() const {
  xml::XmlNode root("PTIMessage");
  auto& info = root.add_child("TypeInfo");
  for (const auto& t : types) {
    auto& tn = info.add_child("Type");
    tn.set_attr("name", t.type_name);
    if (!t.guid.is_nil()) tn.set_attr("guid", t.guid.to_string());
    if (!t.assembly_name.empty()) tn.set_attr("assembly", t.assembly_name);
    if (!t.download_path.empty()) tn.set_attr("downloadPath", t.download_path);
  }
  auto& payload_node = root.add_child("Payload");
  payload_node.set_attr("encoding", encoding);
  const std::string_view payload_text(reinterpret_cast<const char*>(payload.data()),
                                      payload.size());
  if (is_xml_encoding(encoding)) {
    // Nest the XML payload structurally — keeps the whole message
    // human-readable, as the paper advertises for its XML wrapper.
    payload_node.add_child(xml::parse(payload_text));
  } else {
    payload_node.set_attr("transfer", "base64");
    payload_node.set_text(util::base64_encode(payload));
  }
  return root;
}

Envelope Envelope::from_xml(const xml::XmlNode& node) {
  if (node.name() != "PTIMessage") {
    throw SerialError("expected <PTIMessage>, found <" + node.name() + ">");
  }
  Envelope env;
  const xml::XmlNode& info = node.required_child("TypeInfo");
  for (const xml::XmlNode* t : info.children_named("Type")) {
    TypeInfoEntry entry;
    entry.type_name = std::string(t->required_attr("name"));
    if (auto g = t->attr("guid")) {
      const auto parsed = util::Guid::parse(*g);
      if (!parsed) throw SerialError("malformed guid '" + std::string(*g) + "'");
      entry.guid = *parsed;
    }
    entry.assembly_name = std::string(t->attr("assembly").value_or(""));
    entry.download_path = std::string(t->attr("downloadPath").value_or(""));
    env.types.push_back(std::move(entry));
  }
  const xml::XmlNode& payload_node = node.required_child("Payload");
  env.encoding = std::string(payload_node.required_attr("encoding"));
  if (is_xml_encoding(env.encoding)) {
    if (payload_node.children().size() != 1) {
      throw SerialError("XML payload must contain exactly one nested element");
    }
    const std::string text = xml::write(payload_node.children().front(),
                                        xml::WriteOptions{.indent = false,
                                                          .declaration = false});
    env.payload.assign(text.begin(), text.end());
  } else {
    const auto decoded = util::base64_decode(util::trim(payload_node.text()));
    if (!decoded) throw SerialError("malformed base64 payload");
    env.payload = *decoded;
  }
  return env;
}

std::vector<std::uint8_t> Envelope::to_bytes() const {
  const std::string text = xml::write(to_xml());
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

Envelope Envelope::from_bytes(std::span<const std::uint8_t> data) {
  const std::string_view text(reinterpret_cast<const char*>(data.data()), data.size());
  return from_xml(xml::parse(text));
}

std::size_t Envelope::wrapper_size() const {
  const std::size_t total = to_bytes().size();
  return total >= payload.size() ? total - payload.size() : 0;
}

Envelope EnvelopeBuilder::build(const Value& root) {
  Envelope env;
  env.encoding = std::string(serializer_.encoding());
  env.payload = serializer_.serialize(root);
  for (const std::string& type_name : collect_type_names(root)) {
    TypeInfoEntry entry;
    entry.type_name = type_name;
    if (resolver_ != nullptr) {
      if (const reflect::TypeDescription* d = resolver_->resolve(type_name, "")) {
        entry.guid = d->guid();
        entry.assembly_name = d->assembly_name();
        entry.download_path = d->download_path();
      }
    }
    env.types.push_back(std::move(entry));
  }
  return env;
}

}  // namespace pti::serial
