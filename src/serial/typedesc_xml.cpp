#include "serial/typedesc_xml.hpp"

#include "serial/serial_error.hpp"
#include "util/string_util.hpp"
#include "xml/xml_parser.hpp"
#include "xml/xml_writer.hpp"

namespace pti::serial {

using reflect::ConstructorDescription;
using reflect::FieldDescription;
using reflect::MethodDescription;
using reflect::ParamDescription;
using reflect::TypeDescription;
using reflect::TypeKind;
using reflect::Visibility;

namespace {

std::string_view kind_name(TypeKind k) noexcept { return reflect::to_string(k); }

TypeKind parse_kind(std::string_view s) {
  if (util::iequals(s, "class")) return TypeKind::Class;
  if (util::iequals(s, "interface")) return TypeKind::Interface;
  if (util::iequals(s, "primitive")) return TypeKind::Primitive;
  throw SerialError("unknown type kind '" + std::string(s) + "'");
}

Visibility parse_visibility(std::string_view s) {
  if (util::iequals(s, "public")) return Visibility::Public;
  if (util::iequals(s, "protected")) return Visibility::Protected;
  if (util::iequals(s, "private")) return Visibility::Private;
  throw SerialError("unknown visibility '" + std::string(s) + "'");
}

void append_params(xml::XmlNode& parent, const std::vector<ParamDescription>& params) {
  for (const auto& p : params) {
    parent.add_child("Param").set_attr("name", p.name).set_attr("type", p.type_name);
  }
}

std::vector<ParamDescription> read_params(const xml::XmlNode& parent) {
  std::vector<ParamDescription> out;
  for (const xml::XmlNode* p : parent.children_named("Param")) {
    out.push_back(ParamDescription{std::string(p->attr("name").value_or("")),
                                   std::string(p->required_attr("type"))});
  }
  return out;
}

}  // namespace

xml::XmlNode type_description_to_xml(const TypeDescription& d) {
  xml::XmlNode node("TypeDescription");
  node.set_attr("name", d.name());
  if (!d.namespace_name().empty()) node.set_attr("namespace", d.namespace_name());
  node.set_attr("kind", kind_name(d.kind()));
  if (!d.guid().is_nil()) node.set_attr("guid", d.guid().to_string());
  if (!d.assembly_name().empty()) node.set_attr("assembly", d.assembly_name());
  if (!d.download_path().empty()) node.set_attr("downloadPath", d.download_path());
  if (d.structural_tag()) node.set_attr("structuralTag", "true");

  if (!d.superclass().empty()) {
    node.add_child("Superclass").set_attr("name", d.superclass());
  }
  for (const auto& itf : d.interfaces()) {
    node.add_child("Interface").set_attr("name", itf);
  }
  for (const auto& f : d.fields()) {
    auto& fn = node.add_child("Field");
    fn.set_attr("name", f.name);
    fn.set_attr("type", f.type_name);
    fn.set_attr("visibility", reflect::to_string(f.visibility));
    if (f.is_static) fn.set_attr("static", "true");
  }
  for (const auto& m : d.methods()) {
    auto& mn = node.add_child("Method");
    mn.set_attr("name", m.name);
    mn.set_attr("returns", m.return_type);
    mn.set_attr("visibility", reflect::to_string(m.visibility));
    if (m.is_static) mn.set_attr("static", "true");
    append_params(mn, m.params);
  }
  for (const auto& c : d.constructors()) {
    auto& cn = node.add_child("Constructor");
    cn.set_attr("visibility", reflect::to_string(c.visibility));
    append_params(cn, c.params);
  }
  return node;
}

TypeDescription type_description_from_xml(const xml::XmlNode& node) {
  if (node.name() != "TypeDescription") {
    throw SerialError("expected <TypeDescription>, found <" + node.name() + ">");
  }
  TypeDescription d(std::string(node.attr("namespace").value_or("")),
                    std::string(node.required_attr("name")),
                    parse_kind(node.required_attr("kind")));
  if (auto g = node.attr("guid")) {
    const auto parsed = util::Guid::parse(*g);
    if (!parsed) throw SerialError("malformed guid '" + std::string(*g) + "'");
    d.set_guid(*parsed);
  }
  d.set_assembly_name(std::string(node.attr("assembly").value_or("")));
  d.set_download_path(std::string(node.attr("downloadPath").value_or("")));
  if (auto tag = node.attr("structuralTag")) {
    d.set_structural_tag(util::iequals(*tag, "true"));
  }
  if (const xml::XmlNode* sc = node.child("Superclass")) {
    d.set_superclass(std::string(sc->required_attr("name")));
  }
  for (const xml::XmlNode* itf : node.children_named("Interface")) {
    d.add_interface(std::string(itf->required_attr("name")));
  }
  for (const xml::XmlNode* f : node.children_named("Field")) {
    FieldDescription fd;
    fd.name = std::string(f->required_attr("name"));
    fd.type_name = std::string(f->required_attr("type"));
    fd.visibility = parse_visibility(f->attr("visibility").value_or("private"));
    fd.is_static = util::iequals(f->attr("static").value_or("false"), "true");
    d.add_field(std::move(fd));
  }
  for (const xml::XmlNode* m : node.children_named("Method")) {
    MethodDescription md;
    md.name = std::string(m->required_attr("name"));
    md.return_type = std::string(m->required_attr("returns"));
    md.visibility = parse_visibility(m->attr("visibility").value_or("public"));
    md.is_static = util::iequals(m->attr("static").value_or("false"), "true");
    md.params = read_params(*m);
    d.add_method(std::move(md));
  }
  for (const xml::XmlNode* c : node.children_named("Constructor")) {
    ConstructorDescription cd;
    cd.visibility = parse_visibility(c->attr("visibility").value_or("public"));
    cd.params = read_params(*c);
    d.add_constructor(std::move(cd));
  }
  return d;
}

std::string type_description_to_string(const TypeDescription& d, bool indent) {
  xml::WriteOptions opt;
  opt.indent = indent;
  return xml::write(type_description_to_xml(d), opt);
}

TypeDescription type_description_from_string(std::string_view text) {
  return type_description_from_xml(xml::parse(text));
}

}  // namespace pti::serial
