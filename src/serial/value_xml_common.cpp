#include "serial/value_xml_common.hpp"

#include <charconv>

#include "serial/serial_error.hpp"
#include "util/string_util.hpp"

namespace pti::serial::detail {

using reflect::Value;
using reflect::ValueKind;

std::string format_float64(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw SerialError("cannot format float64");
  return std::string(buf, ptr);
}

double parse_float64(std::string_view text) {
  double v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw SerialError("malformed float64 '" + std::string(text) + "'");
  }
  return v;
}

namespace {

template <typename T>
T parse_int(std::string_view text) {
  T v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw SerialError("malformed integer '" + std::string(text) + "'");
  }
  return v;
}

}  // namespace

void write_scalar(xml::XmlNode& node, const Value& value) {
  switch (value.kind()) {
    case ValueKind::Null:
      node.set_attr("kind", "null");
      break;
    case ValueKind::Bool:
      node.set_attr("kind", "bool");
      node.set_text(value.as_bool() ? "true" : "false");
      break;
    case ValueKind::Int32:
      node.set_attr("kind", "int32");
      node.set_text(std::to_string(value.as_int32()));
      break;
    case ValueKind::Int64:
      node.set_attr("kind", "int64");
      node.set_text(std::to_string(value.as_int64()));
      break;
    case ValueKind::Float64:
      node.set_attr("kind", "float64");
      node.set_text(format_float64(value.as_float64()));
      break;
    case ValueKind::String:
      node.set_attr("kind", "string");
      node.set_text(value.as_string());
      break;
    case ValueKind::Object:
    case ValueKind::List:
      throw SerialError("write_scalar cannot encode object/list values");
  }
}

Value read_scalar(std::string_view kind, const xml::XmlNode& node) {
  if (kind == "null") return Value();
  if (kind == "bool") {
    if (util::iequals(node.text(), "true")) return Value(true);
    if (util::iequals(node.text(), "false")) return Value(false);
    throw SerialError("malformed bool '" + node.text() + "'");
  }
  if (kind == "int32") return Value(parse_int<std::int32_t>(node.text()));
  if (kind == "int64") return Value(parse_int<std::int64_t>(node.text()));
  if (kind == "float64") return Value(parse_float64(node.text()));
  if (kind == "string") return Value(node.text());
  throw SerialError("unknown scalar kind '" + std::string(kind) + "'");
}

}  // namespace pti::serial::detail
