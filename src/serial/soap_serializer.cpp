#include "serial/soap_serializer.hpp"

#include <map>
#include <unordered_map>
#include <vector>

#include "reflect/dyn_object.hpp"
#include "serial/serial_error.hpp"
#include "serial/value_xml_common.hpp"
#include "util/guid.hpp"
#include "xml/xml_parser.hpp"
#include "xml/xml_writer.hpp"

namespace pti::serial {

using reflect::DynObject;
using reflect::Value;
using reflect::ValueKind;

namespace {

constexpr std::string_view kEnvelope = "SOAP-ENV:Envelope";
constexpr std::string_view kBody = "SOAP-ENV:Body";

class Writer {
 public:
  xml::XmlNode write(const Value& root) {
    xml::XmlNode envelope{std::string(kEnvelope)};
    envelope.set_attr("xmlns:SOAP-ENV", "http://schemas.xmlsoap.org/soap/envelope/");
    envelope.set_attr("xmlns:SOAP-ENC", "http://schemas.xmlsoap.org/soap/encoding/");
    envelope.set_attr("SOAP-ENV:encodingStyle",
                      "http://schemas.xmlsoap.org/soap/encoding/");
    xml::XmlNode body{std::string(kBody)};

    xml::XmlNode root_node("root");
    write_value(root_node, root);
    body.add_child(std::move(root_node));

    // Breadth-first flush: objects discovered while writing earlier
    // multiRefs append to the queue.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const DynObject* obj = queue_[i];
      xml::XmlNode ref("multiRef");
      ref.set_attr("id", "ref-" + std::to_string(ids_.at(obj)));
      ref.set_attr("type", obj->type_name());
      if (!obj->type_guid().is_nil()) ref.set_attr("guid", obj->type_guid().to_string());
      for (const auto& [field_name, field_value] : obj->fields()) {
        auto& fn = ref.add_child("field");
        fn.set_attr("name", field_name);
        write_value(fn, field_value);
      }
      body.add_child(std::move(ref));
    }
    envelope.add_child(std::move(body));
    return envelope;
  }

 private:
  void write_value(xml::XmlNode& node, const Value& value) {
    switch (value.kind()) {
      case ValueKind::Object: {
        const auto& obj = value.as_object();
        if (!obj) {
          node.set_attr("kind", "null");
          return;
        }
        node.set_attr("kind", "object");
        node.set_attr("href", "#ref-" + std::to_string(id_for(obj.get())));
        return;
      }
      case ValueKind::List: {
        node.set_attr("kind", "list");
        for (const Value& item : value.as_list()) {
          write_value(node.add_child("item"), item);
        }
        return;
      }
      default:
        detail::write_scalar(node, value);
    }
  }

  std::size_t id_for(const DynObject* obj) {
    const auto it = ids_.find(obj);
    if (it != ids_.end()) return it->second;
    const std::size_t id = ids_.size() + 1;
    ids_.emplace(obj, id);
    queue_.push_back(obj);
    return id;
  }

  std::unordered_map<const DynObject*, std::size_t> ids_;
  std::vector<const DynObject*> queue_;
};

class Reader {
 public:
  Value read(const xml::XmlNode& envelope) {
    if (envelope.name() != kEnvelope) {
      throw SerialError("expected <" + std::string(kEnvelope) + ">, found <" +
                        envelope.name() + ">");
    }
    const xml::XmlNode& body = envelope.required_child(std::string(kBody).c_str());

    // Pass 1: materialize every multiRef object (fields filled in pass 2,
    // so hrefs forming cycles resolve).
    for (const xml::XmlNode* ref : body.children_named("multiRef")) {
      util::Guid guid;
      if (auto g = ref->attr("guid")) {
        const auto parsed = util::Guid::parse(*g);
        if (!parsed) throw SerialError("malformed guid '" + std::string(*g) + "'");
        guid = *parsed;
      }
      objects_[std::string(ref->required_attr("id"))] =
          DynObject::make(std::string(ref->required_attr("type")), guid);
    }
    // Pass 2: fill fields.
    for (const xml::XmlNode* ref : body.children_named("multiRef")) {
      const auto& obj = objects_.at(std::string(ref->required_attr("id")));
      for (const xml::XmlNode* f : ref->children_named("field")) {
        obj->set(f->required_attr("name"), read_value(*f));
      }
    }
    return read_value(body.required_child("root"));
  }

 private:
  Value read_value(const xml::XmlNode& node) {
    if (auto href = node.attr("href")) {
      std::string_view target = *href;
      if (target.empty() || target.front() != '#') {
        throw SerialError("malformed href '" + std::string(target) + "'");
      }
      target.remove_prefix(1);
      const auto it = objects_.find(std::string(target));
      if (it == objects_.end()) {
        throw SerialError("dangling href '#" + std::string(target) + "'");
      }
      return Value(it->second);
    }
    const std::string_view kind = node.required_attr("kind");
    if (kind == "object") {
      throw SerialError("object value without href in SOAP body");
    }
    if (kind == "list") {
      Value::List items;
      for (const xml::XmlNode* item : node.children_named("item")) {
        items.push_back(read_value(*item));
      }
      return Value(std::move(items));
    }
    return detail::read_scalar(kind, node);
  }

  std::map<std::string, std::shared_ptr<DynObject>> objects_;
};

}  // namespace

xml::XmlNode SoapSerializer::to_xml(const Value& root) {
  Writer writer;
  return writer.write(root);
}

Value SoapSerializer::from_xml(const xml::XmlNode& envelope) {
  Reader reader;
  return reader.read(envelope);
}

std::vector<std::uint8_t> SoapSerializer::serialize(const Value& root) {
  const std::string text = xml::write(to_xml(root));
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

Value SoapSerializer::deserialize(std::span<const std::uint8_t> data) {
  const std::string_view text(reinterpret_cast<const char*>(data.data()), data.size());
  return from_xml(xml::parse(text));
}

}  // namespace pti::serial
