#include "serial/binary_serializer.hpp"

#include <unordered_map>

#include "reflect/dyn_object.hpp"
#include "serial/serial_error.hpp"
#include "util/byte_buffer.hpp"

namespace pti::serial {

using reflect::DynObject;
using reflect::Value;
using reflect::ValueKind;
using util::ByteReader;
using util::ByteWriter;

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr char kMagic[4] = {'P', 'T', 'I', 'B'};

enum class Tag : std::uint8_t {
  Null = 0,
  Bool = 1,
  Int32 = 2,
  Int64 = 3,
  Float64 = 4,
  String = 5,
  List = 6,
  Object = 7,
};

class Writer {
 public:
  std::vector<std::uint8_t> write(const Value& root) {
    // Skip the first several doublings up front; large object graphs keep
    // growing geometrically from here instead of from a handful of bytes.
    out_.reserve(512);
    out_.write_raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
    out_.write_u8(kVersion);
    write_value(root);
    return out_.take();
  }

 private:
  void write_pooled_string(const std::string& s) {
    const auto it = string_pool_.find(s);
    if (it != string_pool_.end()) {
      out_.write_varint(it->second);
      return;
    }
    out_.write_varint(0);
    out_.write_string(s);
    string_pool_.emplace(s, string_pool_.size() + 1);
  }

  void write_value(const Value& v) {
    switch (v.kind()) {
      case ValueKind::Null:
        out_.write_u8(static_cast<std::uint8_t>(Tag::Null));
        return;
      case ValueKind::Bool:
        out_.write_u8(static_cast<std::uint8_t>(Tag::Bool));
        out_.write_bool(v.as_bool());
        return;
      case ValueKind::Int32:
        out_.write_u8(static_cast<std::uint8_t>(Tag::Int32));
        out_.write_signed_varint(v.as_int32());
        return;
      case ValueKind::Int64:
        out_.write_u8(static_cast<std::uint8_t>(Tag::Int64));
        out_.write_signed_varint(v.as_int64());
        return;
      case ValueKind::Float64:
        out_.write_u8(static_cast<std::uint8_t>(Tag::Float64));
        out_.write_f64(v.as_float64());
        return;
      case ValueKind::String:
        out_.write_u8(static_cast<std::uint8_t>(Tag::String));
        write_pooled_string(v.as_string());
        return;
      case ValueKind::List: {
        out_.write_u8(static_cast<std::uint8_t>(Tag::List));
        const Value::List& items = v.as_list();
        out_.write_varint(items.size());
        for (const Value& item : items) write_value(item);
        return;
      }
      case ValueKind::Object: {
        out_.write_u8(static_cast<std::uint8_t>(Tag::Object));
        const auto& obj = v.as_object();
        if (!obj) {
          // A null object value is encoded as Null; kind() already maps a
          // null shared_ptr to Object, so normalize here.
          out_.write_varint(0);
          out_.write_bool(false);  // "not present" marker
          return;
        }
        const auto it = object_ids_.find(obj.get());
        if (it != object_ids_.end()) {
          out_.write_varint(it->second);
          return;
        }
        const std::size_t id = object_ids_.size() + 1;
        object_ids_.emplace(obj.get(), id);
        out_.write_varint(0);
        out_.write_bool(true);  // "present" marker
        write_pooled_string(obj->type_name());
        out_.write_u64(obj->type_guid().hi());
        out_.write_u64(obj->type_guid().lo());
        out_.write_varint(obj->fields().size());
        for (const auto& [field_name, field_value] : obj->fields()) {
          write_pooled_string(field_name);
          write_value(field_value);
        }
        return;
      }
    }
    throw SerialError("unreachable value kind");
  }

  ByteWriter out_;
  std::unordered_map<std::string, std::uint64_t> string_pool_;
  std::unordered_map<const DynObject*, std::uint64_t> object_ids_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : in_(data) {}

  Value read() {
    for (char expected : kMagic) {
      if (static_cast<char>(in_.read_u8()) != expected) {
        throw SerialError("bad binary magic (not a PTIB payload)");
      }
    }
    const std::uint8_t version = in_.read_u8();
    if (version != kVersion) {
      throw SerialError("unsupported binary version " + std::to_string(version));
    }
    Value v = read_value();
    if (!in_.at_end()) throw SerialError("trailing bytes after binary payload");
    return v;
  }

 private:
  std::string read_pooled_string() {
    const std::uint64_t idx = in_.read_varint();
    if (idx == 0) {
      std::string s = in_.read_string();
      strings_.push_back(s);
      return s;
    }
    if (idx > strings_.size()) throw SerialError("bad string pool reference");
    return strings_[idx - 1];
  }

  Value read_value() {
    const auto tag = static_cast<Tag>(in_.read_u8());
    switch (tag) {
      case Tag::Null: return Value();
      case Tag::Bool: return Value(in_.read_bool());
      case Tag::Int32:
        return Value(static_cast<std::int32_t>(in_.read_signed_varint()));
      case Tag::Int64: return Value(in_.read_signed_varint());
      case Tag::Float64: return Value(in_.read_f64());
      case Tag::String: return Value(read_pooled_string());
      case Tag::List: {
        const std::uint64_t count = in_.read_varint();
        Value::List items;
        items.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) items.push_back(read_value());
        return Value(std::move(items));
      }
      case Tag::Object: {
        const std::uint64_t marker = in_.read_varint();
        if (marker != 0) {
          if (marker > objects_.size()) throw SerialError("bad object back-reference");
          return Value(objects_[marker - 1]);
        }
        if (!in_.read_bool()) return Value(std::shared_ptr<DynObject>{});
        const std::string type_name = read_pooled_string();
        const std::uint64_t hi = in_.read_u64();
        const std::uint64_t lo = in_.read_u64();
        auto obj = DynObject::make(type_name, util::Guid(hi, lo));
        objects_.push_back(obj);  // register before fields: cycles resolve
        const std::uint64_t field_count = in_.read_varint();
        for (std::uint64_t i = 0; i < field_count; ++i) {
          std::string field_name = read_pooled_string();
          obj->set(field_name, read_value());
        }
        return Value(std::move(obj));
      }
    }
    throw SerialError("unknown binary tag " +
                      std::to_string(static_cast<unsigned>(tag)));
  }

  ByteReader in_;
  std::vector<std::string> strings_;
  std::vector<std::shared_ptr<DynObject>> objects_;
};

}  // namespace

std::vector<std::uint8_t> BinarySerializer::serialize(const Value& root) {
  Writer writer;
  return writer.write(root);
}

Value BinarySerializer::deserialize(std::span<const std::uint8_t> data) {
  try {
    Reader reader(data);
    return reader.read();
  } catch (const util::ByteBufferError& e) {
    throw SerialError(std::string("malformed binary payload: ") + e.what());
  }
}

}  // namespace pti::serial
