// FrameCodec — the versioned binary frame protocol that puts
// transport::Message on a real wire.
//
// Until this layer existed, Message structs "knew their wire sizes" but
// only ever travelled in-process. FrameCodec gives every payload variant a
// byte representation so a transport can ship it across a socket:
//
//   offset  size  field
//   0       4     magic "PTIF"
//   4       1     protocol version (kVersion)
//   5       1     kind — the Message payload variant index (0..12)
//   6       4     body length in bytes, little-endian u32
//   10      len   body
//
//   body := sender string, recipient string, then the variant's fields in
//   declaration order, encoded with util::ByteWriter primitives (LEB128
//   varints, length-prefixed strings/bytes) — the same primitives as the
//   binary object serializer, so the whole frame shares one encoding
//   idiom. ObjectPush/InvokeRequest bodies embed the already-serialized
//   serial::Envelope bytes verbatim.
//
// Versioning rules: the magic never changes; a decoder accepts exactly the
// versions it speaks (currently only kVersion) and rejects everything else
// as FrameFault::BadVersion — peers negotiate by failing loudly, not by
// guessing. New payload variants append new kind values; existing kinds
// never change shape within a version. (Version 2 added the SessionBatch /
// SessionBatchAck kinds and the known-description hash set on SessionAck —
// a shape change to an existing kind, hence the bump.)
//
// Decoding is strict and total: any input — truncated, bit-flipped,
// oversized, trailing junk — either yields a fully-valid Message or throws
// serial::FrameError with a classified FrameFault. No crash, no partial
// message, no unbounded allocation (body length is capped by FrameLimits
// before any body byte is touched, and list counts cannot allocate beyond
// the bytes actually present).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "serial/serial_error.hpp"
#include "transport/message.hpp"

namespace pti::serial {

/// Decode-side resource caps. The defaults admit every frame the protocol
/// produces today with room to spare; transports facing hostile peers can
/// tighten them per codec instance.
struct FrameLimits {
  /// Max body length a header may declare (and encode() may produce).
  std::size_t max_body_bytes = 64u * 1024u * 1024u;  // 64 MiB
  /// Max elements a single encoded list may declare. Bounds the decode's
  /// per-element object overhead (a sea of empty strings amplifies ~32x
  /// over its wire bytes), not just its raw byte budget.
  std::size_t max_list_elements = 65536;
};

class FrameCodec {
 public:
  static constexpr std::array<std::uint8_t, 4> kMagic = {'P', 'T', 'I', 'F'};
  static constexpr std::uint8_t kVersion = 2;
  static constexpr std::size_t kHeaderSize = 10;

  /// The validated contents of a frame header.
  struct Header {
    std::uint8_t version = 0;
    std::uint8_t kind = 0;          ///< Message payload variant index
    std::uint32_t body_bytes = 0;   ///< body length following the header
  };

  explicit FrameCodec(FrameLimits limits = {}) noexcept : limits_(limits) {}

  [[nodiscard]] const FrameLimits& limits() const noexcept { return limits_; }

  /// Serializes `message` into one complete frame (header + body).
  /// Throws FrameError{Oversized} when the body exceeds max_body_bytes or
  /// a list exceeds max_list_elements — the same caps the decoder
  /// enforces, so anything encode() accepts every conforming peer decodes.
  [[nodiscard]] std::vector<std::uint8_t> encode(const transport::Message& message) const;

  /// Decodes exactly one complete frame. Throws FrameError on any
  /// malformed input (see the fault taxonomy in serial_error.hpp).
  [[nodiscard]] transport::Message decode(std::span<const std::uint8_t> frame) const;

  /// Validates the fixed-size header alone — the stream-reading entry
  /// point: read kHeaderSize bytes, call this, then read exactly
  /// header.body_bytes more and hand them to decode_body().
  [[nodiscard]] Header decode_header(std::span<const std::uint8_t> bytes) const;

  /// Decodes a body whose header has already been validated. `body.size()`
  /// must equal `header.body_bytes`.
  [[nodiscard]] transport::Message decode_body(const Header& header,
                                               std::span<const std::uint8_t> body) const;

 private:
  FrameLimits limits_;
};

}  // namespace pti::serial
