// ObjectSerializer — the common interface of the three serialization
// mechanisms the paper evaluates on .NET: XML, SOAP and binary
// (Section 6.2). All three carry arbitrary Value graphs (primitives,
// strings, lists, objects); they differ exactly as their .NET counterparts
// do:
//
//   * XML    — human-readable, public fields only, no shared references
//              (re-serializes DAGs, rejects cycles), largest output.
//   * SOAP   — verbose envelope with id/href multi-reference encoding:
//              shared references and cycles round-trip; private fields
//              included.
//   * binary — compact tagged bytes with string & object back-references;
//              shared references and cycles round-trip; smallest/fastest.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "reflect/value.hpp"
#include "util/string_util.hpp"

namespace pti::serial {

class ObjectSerializer {
 public:
  virtual ~ObjectSerializer() = default;

  /// Wire identifier, e.g. "xml", "soap", "binary" — recorded in envelopes
  /// so receivers pick the right decoder.
  [[nodiscard]] virtual std::string_view encoding() const noexcept = 0;

  [[nodiscard]] virtual std::vector<std::uint8_t> serialize(const reflect::Value& root) = 0;
  [[nodiscard]] virtual reflect::Value deserialize(std::span<const std::uint8_t> data) = 0;
};

/// Registry of serializers by encoding name (case-insensitive).
class SerializerRegistry {
 public:
  void add(std::shared_ptr<ObjectSerializer> serializer);
  /// Throws SerialError for unknown encodings.
  [[nodiscard]] ObjectSerializer& get(std::string_view encoding) const;
  [[nodiscard]] bool has(std::string_view encoding) const noexcept;
  [[nodiscard]] std::vector<std::string> encodings() const;

  /// A registry with xml, soap and binary serializers pre-registered.
  [[nodiscard]] static SerializerRegistry with_defaults();

 private:
  // Transparent case-insensitive comparator: lookups probe with the
  // string_view as-is instead of building a lowered copy per call.
  std::map<std::string, std::shared_ptr<ObjectSerializer>, util::ICaseLess> serializers_;
};

}  // namespace pti::serial
