// The hybrid serialization scheme of the paper (Fig. 3).
//
// When an object travels between peers it is wrapped in an XML message
// that combines:
//   * TypeInfo — for every type occurring in the object graph: the type
//     name, its identity (GUID), and where to download its description and
//     implementation (assembly name + download path). This is the
//     "optimistic" part: names and paths travel, descriptions and code do
//     NOT — the receiver fetches them only when needed.
//   * Payload — the object graph serialized by one of the pluggable
//     mechanisms (SOAP or binary, per the paper; XML also supported).
//     XML-based payloads nest as XML; binary payloads are base64.
//
//   <PTIMessage>
//     <TypeInfo>
//       <Type name="teamA.Person" guid="..." assembly="teamA.people"
//             downloadPath="net://peerA/teamA.people"/>
//     </TypeInfo>
//     <Payload encoding="soap"> <SOAP-ENV:Envelope>...</SOAP-ENV:Envelope> </Payload>
//   </PTIMessage>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reflect/type_registry.hpp"
#include "reflect/value.hpp"
#include "serial/object_serializer.hpp"
#include "xml/xml_node.hpp"

namespace pti::serial {

struct TypeInfoEntry {
  std::string type_name;  ///< qualified name
  util::Guid guid;
  std::string assembly_name;
  std::string download_path;

  bool operator==(const TypeInfoEntry&) const = default;
};

struct Envelope {
  std::vector<TypeInfoEntry> types;
  std::string encoding;                ///< payload serializer ("soap", ...)
  std::vector<std::uint8_t> payload;   ///< serialized object graph

  [[nodiscard]] xml::XmlNode to_xml() const;
  [[nodiscard]] static Envelope from_xml(const xml::XmlNode& node);

  /// Full message bytes as put on the wire.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  [[nodiscard]] static Envelope from_bytes(std::span<const std::uint8_t> data);

  /// Size of the XML wrapper alone (message minus payload bytes) — the
  /// envelope overhead benchmark E6 reports.
  [[nodiscard]] std::size_t wrapper_size() const;
};

/// Builds envelopes: walks the object graph, collects the distinct types
/// (with provenance looked up through the resolver), and serializes the
/// payload with the chosen mechanism.
class EnvelopeBuilder {
 public:
  EnvelopeBuilder(ObjectSerializer& serializer, reflect::TypeResolver* resolver)
      : serializer_(serializer), resolver_(resolver) {}

  [[nodiscard]] Envelope build(const reflect::Value& root);

 private:
  ObjectSerializer& serializer_;
  reflect::TypeResolver* resolver_;
};

/// Collects the distinct type names reachable in a value graph (cycle-safe,
/// stable order of first occurrence).
[[nodiscard]] std::vector<std::string> collect_type_names(const reflect::Value& root);

}  // namespace pti::serial
