#include "serial/frame_codec.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <variant>

#include "util/byte_buffer.hpp"

namespace pti::serial {

namespace {

using transport::CodeRequest;
using transport::CodeResponse;
using transport::ErrorReply;
using transport::InvokeRequest;
using transport::InvokeResponse;
using transport::Message;
using transport::MessagePayload;
using transport::ObjectPush;
using transport::PushAck;
using transport::SessionAck;
using transport::SessionBatch;
using transport::SessionBatchAck;
using transport::SessionIntro;
using transport::SessionPush;
using transport::SessionStatus;
using transport::TypeInfoRequest;
using transport::TypeInfoResponse;
using util::ByteReader;
using util::ByteWriter;

constexpr std::size_t kKindCount = std::variant_size_v<MessagePayload>;

/// Mirrors the decoder's element cap: a list every conforming peer is
/// guaranteed to reject as Oversized must fail fast at encode, not as a
/// confusing remote fault plus a torn-down connection.
void write_string_list(ByteWriter& out, const std::vector<std::string>& list,
                       const FrameLimits& limits) {
  if (list.size() > limits.max_list_elements) {
    throw FrameError(FrameFault::Oversized,
                     "list of " + std::to_string(list.size()) +
                         " elements exceeds the " +
                         std::to_string(limits.max_list_elements) + "-element limit");
  }
  out.write_varint(list.size());
  for (const std::string& s : list) out.write_string(s);
}

/// Reads `count` length-prefixed strings. Every encoded string occupies at
/// least one byte, so a count exceeding the bytes left cannot be honest —
/// reject it before allocating anything proportional to it. The element
/// cap bounds the per-element std::string overhead on top of the byte
/// budget (67M empty strings fit a 64 MiB body but cost gigabytes).
std::vector<std::string> read_string_list(ByteReader& in, const FrameLimits& limits) {
  const std::uint64_t count = in.read_varint();
  if (count > in.remaining()) {
    throw util::ByteBufferError("list count exceeds remaining frame bytes");
  }
  if (count > limits.max_list_elements) {
    throw FrameError(FrameFault::Oversized,
                     "list of " + std::to_string(count) + " elements exceeds the " +
                         std::to_string(limits.max_list_elements) + "-element limit");
  }
  std::vector<std::string> list;
  list.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) list.push_back(in.read_string());
  return list;
}

/// Reads a varint element count for a session list, applying the same
/// honesty bound as read_string_list: each element occupies at least one
/// byte, so a count above the bytes left cannot be satisfied.
std::uint64_t read_list_count(ByteReader& in, const FrameLimits& limits) {
  const std::uint64_t count = in.read_varint();
  if (count > in.remaining()) {
    throw util::ByteBufferError("list count exceeds remaining frame bytes");
  }
  if (count > limits.max_list_elements) {
    throw FrameError(FrameFault::Oversized,
                     "list of " + std::to_string(count) + " elements exceeds the " +
                         std::to_string(limits.max_list_elements) + "-element limit");
  }
  return count;
}

// --- shared session bodies ---------------------------------------------------
//
// SessionPush and SessionAck travel both standalone (kinds 9/10) and as
// batch entries (kinds 11/12); one encode/decode pair serves both so the
// batched wire image of an entry is byte-identical to its standalone one.

void write_session_push(ByteWriter& out, const SessionPush& m, const FrameLimits& limits) {
  out.write_varint(m.token);
  if (m.wire_types.size() > limits.max_list_elements ||
      m.intros.size() > limits.max_list_elements) {
    throw FrameError(FrameFault::Oversized,
                     "session list exceeds the " +
                         std::to_string(limits.max_list_elements) + "-element limit");
  }
  out.write_varint(m.wire_types.size());
  for (const std::uint32_t id : m.wire_types) out.write_varint(id);
  out.write_string(m.encoding);
  out.write_bytes(m.payload);
  out.write_varint(m.intros.size());
  for (const SessionIntro& i : m.intros) {
    out.write_varint(i.wire_id);
    out.write_string(i.type_name);
    out.write_string(i.description_xml);
    out.write_string(i.assembly_name);
    out.write_string(i.download_path);
  }
  write_string_list(out, m.intro_assembly_names, limits);
  out.write_varint(m.intro_assembly_bytes);
}

void write_session_ack(ByteWriter& out, const SessionAck& m, const FrameLimits& limits) {
  out.write_u8(static_cast<std::uint8_t>(m.status));
  out.write_bool(m.delivered);
  out.write_string(m.detail);
  if (m.known_desc_hashes.size() > limits.max_list_elements) {
    throw FrameError(FrameFault::Oversized,
                     "advertised-hash set of " +
                         std::to_string(m.known_desc_hashes.size()) +
                         " elements exceeds the " +
                         std::to_string(limits.max_list_elements) + "-element limit");
  }
  out.write_varint(m.known_desc_hashes.size());
  for (const std::uint64_t hash : m.known_desc_hashes) out.write_varint(hash);
}

SessionPush read_session_push(ByteReader& in, const FrameLimits& limits) {
  const auto read_wire_id = [&in]() {
    const std::uint64_t id = in.read_varint();
    if (id > 0xFFFFFFFFull) {
      throw util::ByteBufferError("session wire id exceeds 32 bits");
    }
    return static_cast<std::uint32_t>(id);
  };
  SessionPush m;
  m.token = in.read_varint();
  const std::uint64_t type_count = read_list_count(in, limits);
  m.wire_types.reserve(static_cast<std::size_t>(type_count));
  for (std::uint64_t i = 0; i < type_count; ++i) m.wire_types.push_back(read_wire_id());
  m.encoding = in.read_string();
  m.payload = in.read_bytes();
  const std::uint64_t intro_count = read_list_count(in, limits);
  m.intros.reserve(static_cast<std::size_t>(intro_count));
  for (std::uint64_t i = 0; i < intro_count; ++i) {
    SessionIntro intro;
    intro.wire_id = read_wire_id();
    intro.type_name = in.read_string();
    intro.description_xml = in.read_string();
    intro.assembly_name = in.read_string();
    intro.download_path = in.read_string();
    m.intros.push_back(std::move(intro));
  }
  m.intro_assembly_names = read_string_list(in, limits);
  m.intro_assembly_bytes = in.read_varint();
  return m;
}

SessionAck read_session_ack(ByteReader& in, const FrameLimits& limits) {
  SessionAck m;
  const std::uint8_t status = in.read_u8();
  if (status > static_cast<std::uint8_t>(SessionStatus::Reset)) {
    throw util::ByteBufferError("session ack status " + std::to_string(status) +
                                " names no SessionStatus");
  }
  m.status = static_cast<SessionStatus>(status);
  m.delivered = in.read_bool();
  m.detail = in.read_string();
  const std::uint64_t hash_count = read_list_count(in, limits);
  m.known_desc_hashes.reserve(static_cast<std::size_t>(hash_count));
  for (std::uint64_t i = 0; i < hash_count; ++i) {
    m.known_desc_hashes.push_back(in.read_varint());
  }
  return m;
}

struct BodyWriter {
  ByteWriter& out;
  const FrameLimits& limits;

  void operator()(const ObjectPush& m) const {
    out.write_bytes(m.envelope);
    write_string_list(out, m.eager_descriptions_xml, limits);
    write_string_list(out, m.eager_assembly_names, limits);
    out.write_varint(m.eager_assembly_bytes);
  }
  void operator()(const PushAck& m) const {
    out.write_bool(m.delivered);
    out.write_string(m.detail);
  }
  void operator()(const TypeInfoRequest& m) const {
    write_string_list(out, m.type_names, limits);
  }
  void operator()(const TypeInfoResponse& m) const {
    write_string_list(out, m.descriptions_xml, limits);
    write_string_list(out, m.unknown, limits);
  }
  void operator()(const CodeRequest& m) const { out.write_string(m.assembly_name); }
  void operator()(const CodeResponse& m) const {
    out.write_string(m.assembly_name);
    out.write_bool(m.found);
    out.write_varint(m.code_bytes);
  }
  void operator()(const InvokeRequest& m) const {
    out.write_varint(m.object_id);
    out.write_string(m.method_name);
    out.write_bytes(m.args_envelope);
  }
  void operator()(const InvokeResponse& m) const {
    out.write_bool(m.ok);
    out.write_bytes(m.result_envelope);
    out.write_string(m.error);
  }
  void operator()(const ErrorReply& m) const { out.write_string(m.message); }
  void operator()(const SessionPush& m) const { write_session_push(out, m, limits); }
  void operator()(const SessionAck& m) const { write_session_ack(out, m, limits); }
  void operator()(const SessionBatch& m) const {
    if (m.entries.size() > limits.max_list_elements) {
      throw FrameError(FrameFault::Oversized,
                       "batch of " + std::to_string(m.entries.size()) +
                           " entries exceeds the " +
                           std::to_string(limits.max_list_elements) + "-element limit");
    }
    out.write_varint(m.entries.size());
    for (const SessionPush& entry : m.entries) write_session_push(out, entry, limits);
  }
  void operator()(const SessionBatchAck& m) const {
    if (m.entries.size() > limits.max_list_elements) {
      throw FrameError(FrameFault::Oversized,
                       "batch ack of " + std::to_string(m.entries.size()) +
                           " entries exceeds the " +
                           std::to_string(limits.max_list_elements) + "-element limit");
    }
    out.write_varint(m.entries.size());
    for (const SessionAck& entry : m.entries) write_session_ack(out, entry, limits);
  }
};

MessagePayload read_body_payload(std::uint8_t kind, ByteReader& in,
                                 const FrameLimits& limits) {
  switch (kind) {
    case 0: {
      ObjectPush m;
      m.envelope = in.read_bytes();
      m.eager_descriptions_xml = read_string_list(in, limits);
      m.eager_assembly_names = read_string_list(in, limits);
      m.eager_assembly_bytes = in.read_varint();
      return m;
    }
    case 1: {
      PushAck m;
      m.delivered = in.read_bool();
      m.detail = in.read_string();
      return m;
    }
    case 2: {
      TypeInfoRequest m;
      m.type_names = read_string_list(in, limits);
      return m;
    }
    case 3: {
      TypeInfoResponse m;
      m.descriptions_xml = read_string_list(in, limits);
      m.unknown = read_string_list(in, limits);
      return m;
    }
    case 4: {
      CodeRequest m;
      m.assembly_name = in.read_string();
      return m;
    }
    case 5: {
      CodeResponse m;
      m.assembly_name = in.read_string();
      m.found = in.read_bool();
      m.code_bytes = in.read_varint();
      return m;
    }
    case 6: {
      InvokeRequest m;
      m.object_id = in.read_varint();
      m.method_name = in.read_string();
      m.args_envelope = in.read_bytes();
      return m;
    }
    case 7: {
      InvokeResponse m;
      m.ok = in.read_bool();
      m.result_envelope = in.read_bytes();
      m.error = in.read_string();
      return m;
    }
    case 8: {
      ErrorReply m;
      m.message = in.read_string();
      return m;
    }
    case 9: return read_session_push(in, limits);
    case 10: return read_session_ack(in, limits);
    case 11: {
      SessionBatch m;
      const std::uint64_t entry_count = read_list_count(in, limits);
      m.entries.reserve(static_cast<std::size_t>(entry_count));
      for (std::uint64_t i = 0; i < entry_count; ++i) {
        m.entries.push_back(read_session_push(in, limits));
      }
      return m;
    }
    case 12: {
      SessionBatchAck m;
      const std::uint64_t entry_count = read_list_count(in, limits);
      m.entries.reserve(static_cast<std::size_t>(entry_count));
      for (std::uint64_t i = 0; i < entry_count; ++i) {
        m.entries.push_back(read_session_ack(in, limits));
      }
      return m;
    }
    default: break;
  }
  // Unreachable: decode_header validated the kind. Kept total anyway.
  throw FrameError(FrameFault::UnknownKind,
                   "kind " + std::to_string(kind) + " names no payload variant");
}

}  // namespace

std::vector<std::uint8_t> FrameCodec::encode(const Message& message) const {
  ByteWriter body;
  body.reserve(message.sender.size() + message.recipient.size() + 64);
  body.write_string(message.sender);
  body.write_string(message.recipient);
  std::visit(BodyWriter{body, limits_}, message.payload);
  // The header's length field is a u32, so 0xFFFFFFFF caps the encodable
  // body regardless of how far FrameLimits was loosened — silently
  // truncating the declared length would desync the whole stream.
  constexpr std::size_t kWireMax = 0xFFFFFFFFu;
  if (body.size() > limits_.max_body_bytes || body.size() > kWireMax) {
    throw FrameError(FrameFault::Oversized,
                     "encoded body of " + std::to_string(body.size()) +
                         " bytes exceeds the " +
                         std::to_string(std::min(limits_.max_body_bytes, kWireMax)) +
                         "-byte limit");
  }

  ByteWriter frame;
  frame.reserve(kHeaderSize + body.size());
  frame.write_raw(kMagic);
  frame.write_u8(kVersion);
  frame.write_u8(static_cast<std::uint8_t>(message.payload.index()));
  frame.write_u32(static_cast<std::uint32_t>(body.size()));
  frame.write_raw(body.bytes());
  return frame.take();
}

FrameCodec::Header FrameCodec::decode_header(std::span<const std::uint8_t> bytes) const {
  if (bytes.size() < kHeaderSize) {
    throw FrameError(FrameFault::Truncated,
                     std::to_string(bytes.size()) + " bytes cannot hold the " +
                         std::to_string(kHeaderSize) + "-byte header");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (bytes[i] != kMagic[i]) {
      throw FrameError(FrameFault::BadMagic, "frame does not start with \"PTIF\"");
    }
  }
  Header header;
  header.version = bytes[4];
  header.kind = bytes[5];
  header.body_bytes = static_cast<std::uint32_t>(bytes[6]) |
                      (static_cast<std::uint32_t>(bytes[7]) << 8) |
                      (static_cast<std::uint32_t>(bytes[8]) << 16) |
                      (static_cast<std::uint32_t>(bytes[9]) << 24);
  if (header.version != kVersion) {
    throw FrameError(FrameFault::BadVersion,
                     "version " + std::to_string(header.version) +
                         " (this codec speaks " + std::to_string(kVersion) + ")");
  }
  if (header.kind >= kKindCount) {
    throw FrameError(FrameFault::UnknownKind,
                     "kind " + std::to_string(header.kind) + " names no payload variant");
  }
  if (header.body_bytes > limits_.max_body_bytes) {
    throw FrameError(FrameFault::Oversized,
                     "declared body of " + std::to_string(header.body_bytes) +
                         " bytes exceeds the " + std::to_string(limits_.max_body_bytes) +
                         "-byte limit");
  }
  return header;
}

Message FrameCodec::decode_body(const Header& header,
                                std::span<const std::uint8_t> body) const {
  if (body.size() != header.body_bytes) {
    throw FrameError(body.size() < header.body_bytes ? FrameFault::Truncated
                                                     : FrameFault::Corrupt,
                     "header declares " + std::to_string(header.body_bytes) +
                         " body bytes, got " + std::to_string(body.size()));
  }
  ByteReader in(body);
  Message message;
  try {
    message.sender = in.read_string();
    message.recipient = in.read_string();
    message.payload = read_body_payload(header.kind, in, limits_);
  } catch (const util::ByteBufferError& e) {
    throw FrameError(FrameFault::Corrupt, e.what());
  }
  if (!in.at_end()) {
    throw FrameError(FrameFault::Corrupt,
                     std::to_string(in.remaining()) + " trailing bytes after the payload");
  }
  return message;
}

Message FrameCodec::decode(std::span<const std::uint8_t> frame) const {
  const Header header = decode_header(frame);
  return decode_body(header, frame.subspan(kHeaderSize));
}

}  // namespace pti::serial
