#include "serial/object_serializer.hpp"

#include "serial/binary_serializer.hpp"
#include "serial/serial_error.hpp"
#include "serial/soap_serializer.hpp"
#include "serial/xml_object_serializer.hpp"
#include "util/string_util.hpp"

namespace pti::serial {

void SerializerRegistry::add(std::shared_ptr<ObjectSerializer> serializer) {
  if (!serializer) throw SerialError("cannot register a null serializer");
  std::string key = util::to_lower(serializer->encoding());
  serializers_[std::move(key)] = std::move(serializer);
}

ObjectSerializer& SerializerRegistry::get(std::string_view encoding) const {
  const auto it = serializers_.find(encoding);
  if (it == serializers_.end()) {
    throw SerialError("no serializer registered for encoding '" + std::string(encoding) +
                      "'");
  }
  return *it->second;
}

bool SerializerRegistry::has(std::string_view encoding) const noexcept {
  return serializers_.find(encoding) != serializers_.end();
}

std::vector<std::string> SerializerRegistry::encodings() const {
  std::vector<std::string> out;
  out.reserve(serializers_.size());
  for (const auto& [name, s] : serializers_) out.push_back(name);
  return out;
}

SerializerRegistry SerializerRegistry::with_defaults() {
  SerializerRegistry registry;
  registry.add(std::make_shared<XmlObjectSerializer>());
  registry.add(std::make_shared<SoapSerializer>());
  registry.add(std::make_shared<BinarySerializer>());
  return registry;
}

}  // namespace pti::serial
