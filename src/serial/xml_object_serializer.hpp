// Plain XML object serialization, modelled on .NET's XmlSerializer: a
// human-readable tree of *public* state. Like its model it has no notion
// of object identity — shared sub-objects are duplicated and cyclic graphs
// are rejected — which is why the paper pairs it with SOAP/binary for the
// actual object payload and uses XML for descriptions and envelopes.
#pragma once

#include <optional>

#include "reflect/type_registry.hpp"
#include "serial/object_serializer.hpp"
#include "xml/xml_node.hpp"

namespace pti::serial {

class XmlObjectSerializer final : public ObjectSerializer {
 public:
  /// When a resolver is supplied, only fields declared *public* in the
  /// object's type description are emitted (the .NET XmlSerializer
  /// behaviour); without one, or for unknown types, all fields are kept.
  explicit XmlObjectSerializer(reflect::TypeResolver* resolver = nullptr)
      : resolver_(resolver) {}

  [[nodiscard]] std::string_view encoding() const noexcept override { return "xml"; }
  [[nodiscard]] std::vector<std::uint8_t> serialize(const reflect::Value& root) override;
  [[nodiscard]] reflect::Value deserialize(std::span<const std::uint8_t> data) override;

  /// DOM-level entry points (used by the envelope to nest payloads inline).
  [[nodiscard]] xml::XmlNode to_xml(const reflect::Value& root);
  [[nodiscard]] reflect::Value from_xml(const xml::XmlNode& root);

 private:
  reflect::TypeResolver* resolver_;
};

}  // namespace pti::serial
