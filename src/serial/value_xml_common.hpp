// Shared helpers for the XML-based value encodings (plain XML and SOAP):
// rendering primitive values to/from element text and kind attributes.
#pragma once

#include <string>
#include <string_view>

#include "reflect/value.hpp"
#include "xml/xml_node.hpp"

namespace pti::serial::detail {

/// Formats a float64 so it round-trips exactly (shortest representation).
[[nodiscard]] std::string format_float64(double v);
[[nodiscard]] double parse_float64(std::string_view text);

/// Writes a primitive (non-object) value's kind attribute and text content
/// onto `node`. Object values are the caller's concern (inline vs. href).
void write_scalar(xml::XmlNode& node, const reflect::Value& value);

/// Reads a scalar value of the given kind string from `node`'s text.
[[nodiscard]] reflect::Value read_scalar(std::string_view kind, const xml::XmlNode& node);

}  // namespace pti::serial::detail
