#pragma once

#include "util/error.hpp"

namespace pti::serial {

class SerialError : public Error {
 public:
  using Error::Error;
};

}  // namespace pti::serial
