#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace pti::serial {

class SerialError : public Error {
 public:
  using Error::Error;
};

/// Why a wire frame was rejected by serial::FrameCodec. Decoding is strict:
/// every malformed input maps to exactly one fault, never a crash or a
/// partially-constructed message.
enum class FrameFault : std::uint8_t {
  Truncated,    ///< fewer bytes than the header (or its length field) promises
  BadMagic,     ///< the first four bytes are not "PTIF"
  BadVersion,   ///< protocol version this codec does not speak
  UnknownKind,  ///< kind byte names no Message payload variant
  Oversized,    ///< declared body length exceeds the configured frame limit
  Corrupt,      ///< body bytes do not parse as the declared kind (or trail junk)
};

[[nodiscard]] constexpr std::string_view to_string(FrameFault fault) noexcept {
  switch (fault) {
    case FrameFault::Truncated: return "truncated";
    case FrameFault::BadMagic: return "bad-magic";
    case FrameFault::BadVersion: return "bad-version";
    case FrameFault::UnknownKind: return "unknown-kind";
    case FrameFault::Oversized: return "oversized";
    case FrameFault::Corrupt: return "corrupt";
  }
  return "corrupt";
}

/// A frame failed to encode or decode. Carries the FrameFault so transports
/// and tests can branch on the rejection class without string matching; the
/// public API classifies it as core::ErrorCode::Serialization.
class FrameError : public SerialError {
 public:
  FrameError(FrameFault fault, const std::string& message)
      : SerialError("frame " + std::string(to_string(fault)) + ": " + message),
        fault_(fault) {}

  [[nodiscard]] FrameFault fault() const noexcept { return fault_; }

 private:
  FrameFault fault_;
};

}  // namespace pti::serial
