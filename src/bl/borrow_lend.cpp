#include "bl/borrow_lend.hpp"

#include "util/string_util.hpp"

namespace pti::bl {

std::uint64_t Lender::lend(const std::shared_ptr<reflect::DynObject>& resource) {
  if (!resource) throw remoting::RemotingError("cannot lend a null resource");
  const std::uint64_t id = runtime_.export_object(resource);
  directory_.advertise(Advert{runtime_.name(), id, resource->type_name(), true});
  return id;
}

std::optional<Borrowed> Borrower::borrow(std::string_view criterion_type) {
  const reflect::TypeDescription* criterion =
      runtime_.domain().registry().find(criterion_type);
  if (criterion == nullptr) {
    throw conform::ConformError("borrow criterion type '" + std::string(criterion_type) +
                                "' is not known locally");
  }
  for (Advert& advert : directory_.adverts()) {
    if (!advert.available) continue;
    if (advert.lender == runtime_.name()) continue;  // do not borrow from self

    // Importing fetches the remote type's description on demand; then the
    // conformance criterion decides (further referenced descriptions are
    // fetched transparently through the peer's resolver path).
    std::shared_ptr<reflect::DynObject> ref =
        runtime_.import_remote(advert.lender, advert.object_id, advert.type_name);
    const conform::CheckResult result =
        runtime_.peer().checker().check(advert.type_name, criterion->qualified_name());
    if (!result.conformant) continue;

    advert.available = false;
    Borrowed borrowed;
    borrowed.handle = runtime_.proxies().wrap(std::move(ref), *criterion);
    borrowed.advert = advert;
    return borrowed;
  }
  return std::nullopt;
}

void Borrower::give_back(const Borrowed& borrowed) {
  for (Advert& advert : directory_.adverts()) {
    if (advert.lender == borrowed.advert.lender &&
        advert.object_id == borrowed.advert.object_id) {
      advert.available = true;
      return;
    }
  }
}

}  // namespace pti::bl
