// The borrow/lend (BL) abstraction — the paper's second application
// (Section 8, citing [Eugster/Baehni, Java Grande-ISCOPE 2002]).
//
// Lenders lend resources to borrowers via specific criteria; the paper's
// proposed criterion is *type conformance*: a borrower asks for "anything
// usable as my type T_A", and a lent resource of type T_L qualifies when
// T_L ≼is T_A. The borrowed resource stays on the lender (pass-by-
// reference): the borrower drives it through a dynamic proxy stacked on a
// remoting proxy — the exact composition Section 6.2 describes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/interop.hpp"

namespace pti::bl {

/// One lent resource, as advertised in the directory.
struct Advert {
  std::string lender;      ///< runtime name hosting the resource
  std::uint64_t object_id = 0;
  std::string type_name;   ///< qualified type of the lent resource
  bool available = true;
};

/// Shared directory of lent resources (the rendezvous service).
class Directory {
 public:
  void advertise(Advert advert) { adverts_.push_back(std::move(advert)); }
  [[nodiscard]] std::vector<Advert>& adverts() noexcept { return adverts_; }

 private:
  std::vector<Advert> adverts_;
};

class Lender {
 public:
  Lender(core::InteropRuntime& runtime, Directory& directory)
      : runtime_(runtime), directory_(directory) {}

  /// Lends a resource: exports it for remote invocation and advertises it.
  std::uint64_t lend(const std::shared_ptr<reflect::DynObject>& resource);

 private:
  core::InteropRuntime& runtime_;
  Directory& directory_;
};

/// A successfully borrowed resource: a local handle (dynamic proxy over a
/// remote reference) usable as the borrower's criterion type.
struct Borrowed {
  std::shared_ptr<reflect::DynObject> handle;
  Advert advert;
};

class Borrower {
 public:
  Borrower(core::InteropRuntime& runtime, Directory& directory)
      : runtime_(runtime), directory_(directory) {}

  /// Scans the directory for the first available resource whose type
  /// conforms to `criterion_type` (a locally known type). Marks it
  /// unavailable and returns the adapted handle; nullopt when nothing
  /// conforms.
  [[nodiscard]] std::optional<Borrowed> borrow(std::string_view criterion_type);

  /// Returns a previously borrowed resource to the pool.
  void give_back(const Borrowed& borrowed);

 private:
  core::InteropRuntime& runtime_;
  Directory& directory_;
};

}  // namespace pti::bl
