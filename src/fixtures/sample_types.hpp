// Sample type universe used by tests, benchmarks and examples.
//
// These assemblies recreate the paper's running examples:
//   * teamA.people / teamB.people — two teams' `Person` (the Section 3.1
//     motivating example: getName/setName vs getPersonName/setPersonName),
//     each with a nested `Address` (exercises recursive conformance and
//     deep proxy wrapping);
//   * planner.* / agenda.* — `Meeting` types whose constructors/methods
//     take the same arguments in a different order (exercises argument
//     permutations, Fig. 2's Perm);
//   * bank.* — an `Account` type that conforms to nothing above (the
//     rejection path of the optimistic protocol);
//   * listsA.* / listsB.* — recursive linked-node types (coinductive
//     conformance);
//   * taggedA.* / taggedB.* — structurally tagged `Point` types for the
//     Läufer-style baseline;
//   * print shop types — `Printer`-like resources for the borrow/lend
//     application.
//
// All builders are pure: each call returns a fresh Assembly, so different
// peers can host identical universes independently.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "reflect/assembly.hpp"

namespace pti::fixtures {

// --- the paper's Person example ---------------------------------------------
/// teamA.people: interface teamA.INamed; class teamA.Person
/// (name/address fields; getName/setName/getAddress/setAddress/greet);
/// class teamA.Address (street/zip; getStreet/getZip).
[[nodiscard]] std::shared_ptr<const reflect::Assembly> team_a_people();

/// teamB.people: class teamB.Person (getPersonName/setPersonName/...);
/// class teamB.Address — structurally conformant with teamA's.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> team_b_people();

/// evilC.people: class evilC.Person — *structurally* conformant with
/// teamA.Person but *behaviorally* divergent (getName reverses the name,
/// greet uses a different format). Exercises the behavioral probe
/// (conform/behavioral.hpp): structural rules accept it, differential
/// testing exposes it.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> team_evil_people();

// --- argument permutations ---------------------------------------------------
/// planner.schedule: class planner.Meeting, ctor(title:string,start:int64),
/// method reschedule(title:string,start:int64).
[[nodiscard]] std::shared_ptr<const reflect::Assembly> planner_meetings();

/// agenda.schedule: class agenda.Meeting, ctor(begin:int64,title:string) —
/// same parts, permuted order.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> agenda_meetings();

// --- rejection path ----------------------------------------------------------
/// bank.accounts: class bank.Account — conforms to none of the above.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> bank_accounts();

// --- recursive types ---------------------------------------------------------
/// listsA.collections: class listsA.Node {value:int32, next:Node} with
/// getValue/getNext/setNext.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> lists_a();
/// listsB.collections: class listsB.Node — same shape, different names
/// inside (getNodeValue etc. still token-conformant).
[[nodiscard]] std::shared_ptr<const reflect::Assembly> lists_b();

// --- tagged structural baseline ---------------------------------------------
/// taggedA.geometry / taggedB.geometry: Point types carrying the
/// structural tag (plus an untagged twin in B for the negative case).
[[nodiscard]] std::shared_ptr<const reflect::Assembly> tagged_a();
[[nodiscard]] std::shared_ptr<const reflect::Assembly> tagged_b();

// --- borrow/lend resources ----------------------------------------------------
/// shopA.devices: class shopA.Printer (print(doc:string)->int32 pages,
/// getQueueLength()->int32).
[[nodiscard]] std::shared_ptr<const reflect::Assembly> print_shop();
/// officeB.devices: class officeB.PrintingDevice (printDocument/
/// getPrintQueueLength) — the borrower's criterion type.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> office_devices();

// --- synthetic scaling types (benchmarks) -------------------------------------
/// An assembly "<ns>.generated" with one class `<ns>.<name>` having
/// `field_count` int32/string fields and `method_count` getter-style
/// methods. Deterministic; used for width sweeps in E2/E4/E7.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> wide_type(
    const std::string& ns, const std::string& name, std::size_t field_count,
    std::size_t method_count);

/// A chain of `depth` classes, `<ns>.T0 .. T<depth-1>`, where Ti has a
/// field and getter of type Ti+1 — for depth sweeps of recursive
/// conformance checking.
[[nodiscard]] std::shared_ptr<const reflect::Assembly> deep_type_chain(
    const std::string& ns, std::size_t depth);

}  // namespace pti::fixtures
