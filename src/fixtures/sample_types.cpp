#include "fixtures/sample_types.hpp"

#include <algorithm>

#include "reflect/primitives.hpp"
#include "reflect/type_builder.hpp"

namespace pti::fixtures {

using reflect::Args;
using reflect::Assembly;
using reflect::DynObject;
using reflect::ParamDescription;
using reflect::TypeBuilder;
using reflect::TypeKind;
using reflect::Value;
using reflect::Visibility;

namespace {

std::string str(std::string_view s) { return std::string(s); }

}  // namespace

std::shared_ptr<const Assembly> team_a_people() {
  auto assembly = std::make_shared<Assembly>("teamA.people");

  assembly->add_type(
      TypeBuilder("teamA", "INamed", TypeKind::Interface)
          .method("getName", str(reflect::kStringType), {})
          .build());

  assembly->add_type(
      TypeBuilder("teamA", "Address")
          .field("street", str(reflect::kStringType))
          .field("zip", str(reflect::kInt32Type))
          .constructor({{"street", str(reflect::kStringType)},
                        {"zip", str(reflect::kInt32Type)}},
                       [](DynObject& self, Args a) {
                         self.set("street", a[0]);
                         self.set("zip", a[1]);
                       })
          .method("getStreet", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("street"); })
          .method("getZip", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("zip"); })
          .build());

  assembly->add_type(
      TypeBuilder("teamA", "Person")
          .implements("teamA.INamed")
          .field("name", str(reflect::kStringType))
          .field("address", "Address")
          .constructor({{"name", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) { self.set("name", a[0]); })
          .method("getName", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("name"); })
          .method("setName", str(reflect::kVoidType),
                  {{"name", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    self.set("name", a[0]);
                    return Value();
                  })
          .method("getAddress", "Address", {},
                  [](DynObject& self, Args) { return self.get("address"); })
          .method("setAddress", str(reflect::kVoidType), {{"address", "Address"}},
                  [](DynObject& self, Args a) {
                    self.set("address", a[0]);
                    return Value();
                  })
          .method("greet", str(reflect::kStringType),
                  {{"greeting", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    return Value(a[0].as_string() + ", " + self.get("name").as_string() +
                                 "!");
                  })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> team_b_people() {
  auto assembly = std::make_shared<Assembly>("teamB.people");

  assembly->add_type(
      TypeBuilder("teamB", "INamed", TypeKind::Interface)
          .method("getPersonName", str(reflect::kStringType), {})
          .build());

  assembly->add_type(
      TypeBuilder("teamB", "Address")
          .field("street", str(reflect::kStringType))
          .field("zip", str(reflect::kInt32Type))
          .constructor({{"streetName", str(reflect::kStringType)},
                        {"zipCode", str(reflect::kInt32Type)}},
                       [](DynObject& self, Args a) {
                         self.set("street", a[0]);
                         self.set("zip", a[1]);
                       })
          .method("getStreetName", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("street"); })
          .method("getZipCode", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("zip"); })
          .build());

  assembly->add_type(
      TypeBuilder("teamB", "Person")
          .implements("teamB.INamed")
          .field("name", str(reflect::kStringType))
          .field("address", "Address")
          .constructor({{"personName", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) { self.set("name", a[0]); })
          .method("getPersonName", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("name"); })
          .method("setPersonName", str(reflect::kVoidType),
                  {{"personName", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    self.set("name", a[0]);
                    return Value();
                  })
          .method("getAddress", "Address", {},
                  [](DynObject& self, Args) { return self.get("address"); })
          .method("setAddress", str(reflect::kVoidType), {{"address", "Address"}},
                  [](DynObject& self, Args a) {
                    self.set("address", a[0]);
                    return Value();
                  })
          .method("greet", str(reflect::kStringType),
                  {{"salutation", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    return Value(a[0].as_string() + ", " + self.get("name").as_string() +
                                 "!");
                  })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> team_evil_people() {
  auto assembly = std::make_shared<Assembly>("evilC.people");

  assembly->add_type(
      TypeBuilder("evilC", "INamed", TypeKind::Interface)
          .method("getName", str(reflect::kStringType), {})
          .build());

  assembly->add_type(
      TypeBuilder("evilC", "Address")
          .field("street", str(reflect::kStringType))
          .field("zip", str(reflect::kInt32Type))
          .constructor({{"street", str(reflect::kStringType)},
                        {"zip", str(reflect::kInt32Type)}},
                       [](DynObject& self, Args a) {
                         self.set("street", a[0]);
                         self.set("zip", a[1]);
                       })
          .method("getStreet", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("street"); })
          .method("getZip", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("zip"); })
          .build());

  assembly->add_type(
      TypeBuilder("evilC", "Person")
          .implements("evilC.INamed")
          .field("name", str(reflect::kStringType))
          .field("address", "Address")
          .constructor({{"name", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) { self.set("name", a[0]); })
          // Structurally a perfect Person; behaviorally wrong on purpose.
          .method("getName", str(reflect::kStringType), {},
                  [](DynObject& self, Args) {
                    std::string reversed = self.get("name").as_string();
                    std::reverse(reversed.begin(), reversed.end());
                    return Value(std::move(reversed));
                  })
          .method("setName", str(reflect::kVoidType),
                  {{"name", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    self.set("name", a[0]);
                    return Value();
                  })
          .method("getAddress", "Address", {},
                  [](DynObject& self, Args) { return self.get("address"); })
          .method("setAddress", str(reflect::kVoidType), {{"address", "Address"}},
                  [](DynObject& self, Args a) {
                    self.set("address", a[0]);
                    return Value();
                  })
          .method("greet", str(reflect::kStringType),
                  {{"greeting", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    return Value(self.get("name").as_string() + "? " +
                                 a[0].as_string() + "...");
                  })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> planner_meetings() {
  auto assembly = std::make_shared<Assembly>("planner.schedule");
  assembly->add_type(
      TypeBuilder("planner", "Meeting")
          .field("title", str(reflect::kStringType))
          .field("start", str(reflect::kInt64Type))
          .constructor({{"title", str(reflect::kStringType)},
                        {"start", str(reflect::kInt64Type)}},
                       [](DynObject& self, Args a) {
                         self.set("title", a[0]);
                         self.set("start", a[1]);
                       })
          .method("getTitle", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("title"); })
          .method("getMeetingStart", str(reflect::kInt64Type), {},
                  [](DynObject& self, Args) { return self.get("start"); })
          .method("reschedule", str(reflect::kVoidType),
                  {{"title", str(reflect::kStringType)},
                   {"start", str(reflect::kInt64Type)}},
                  [](DynObject& self, Args a) {
                    self.set("title", a[0]);
                    self.set("start", a[1]);
                    return Value();
                  })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> agenda_meetings() {
  auto assembly = std::make_shared<Assembly>("agenda.schedule");
  assembly->add_type(
      TypeBuilder("agenda", "Meeting")
          .field("title", str(reflect::kStringType))
          .field("startTime", str(reflect::kInt64Type))
          // Same constituent parts as planner.Meeting, permuted order.
          .constructor({{"begin", str(reflect::kInt64Type)},
                        {"title", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) {
                         self.set("startTime", a[0]);
                         self.set("title", a[1]);
                       })
          .method("getTitle", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("title"); })
          .method("getStart", str(reflect::kInt64Type), {},
                  [](DynObject& self, Args) { return self.get("startTime"); })
          .method("reschedule", str(reflect::kVoidType),
                  {{"begin", str(reflect::kInt64Type)},
                   {"title", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    self.set("startTime", a[0]);
                    self.set("title", a[1]);
                    return Value();
                  })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> bank_accounts() {
  auto assembly = std::make_shared<Assembly>("bank.accounts");
  assembly->add_type(
      TypeBuilder("bank", "Account")
          .field("owner", str(reflect::kStringType))
          .field("balance", str(reflect::kFloat64Type))
          .constructor({{"owner", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) { self.set("owner", a[0]); })
          .method("getOwner", str(reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("owner"); })
          .method("getBalance", str(reflect::kFloat64Type), {},
                  [](DynObject& self, Args) { return self.get("balance"); })
          .method("deposit", str(reflect::kVoidType),
                  {{"amount", str(reflect::kFloat64Type)}},
                  [](DynObject& self, Args a) {
                    self.set("balance",
                             Value(self.get("balance").as_float64() + a[0].as_float64()));
                    return Value();
                  })
          .build());
  return assembly;
}

namespace {

/// Walks a homogeneous linked chain summing the value field.
Value sum_chain(DynObject& self, std::string_view value_field,
                std::string_view next_field) {
  std::int64_t total = 0;
  const DynObject* current = &self;
  while (current != nullptr) {
    total += current->get(value_field).as_int32();
    const Value next = current->get_or_null(next_field);
    current = (next.kind() == reflect::ValueKind::Object && next.as_object())
                  ? next.as_object().get()
                  : nullptr;
  }
  return Value(static_cast<std::int32_t>(total));
}

}  // namespace

std::shared_ptr<const Assembly> lists_a() {
  auto assembly = std::make_shared<Assembly>("listsA.collections");
  assembly->add_type(
      TypeBuilder("listsA", "Node")
          .field("value", str(reflect::kInt32Type))
          .field("next", "Node")
          .constructor({{"value", str(reflect::kInt32Type)}},
                       [](DynObject& self, Args a) { self.set("value", a[0]); })
          .method("getValue", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("value"); })
          .method("getNext", "Node", {},
                  [](DynObject& self, Args) { return self.get("next"); })
          .method("setNext", str(reflect::kVoidType), {{"next", "Node"}},
                  [](DynObject& self, Args a) {
                    self.set("next", a[0]);
                    return Value();
                  })
          .method("sum", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return sum_chain(self, "value", "next"); })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> lists_b() {
  auto assembly = std::make_shared<Assembly>("listsB.collections");
  assembly->add_type(
      TypeBuilder("listsB", "Node")
          .field("nodeValue", str(reflect::kInt32Type))
          .field("nextNode", "Node")
          .constructor({{"nodeValue", str(reflect::kInt32Type)}},
                       [](DynObject& self, Args a) { self.set("nodeValue", a[0]); })
          .method("getNodeValue", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("nodeValue"); })
          .method("getNextNode", "Node", {},
                  [](DynObject& self, Args) { return self.get("nextNode"); })
          .method("setNextNode", str(reflect::kVoidType), {{"nextNode", "Node"}},
                  [](DynObject& self, Args a) {
                    self.set("nextNode", a[0]);
                    return Value();
                  })
          .method("sum", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) {
                    return sum_chain(self, "nodeValue", "nextNode");
                  })
          .build());
  return assembly;
}

namespace {

std::shared_ptr<const reflect::NativeType> tagged_point(const std::string& ns, bool tag) {
  return TypeBuilder(ns, tag ? "Point" : "PlainPoint")
      .structural_tag(tag)
      .field("x", str(reflect::kInt32Type))
      .field("y", str(reflect::kInt32Type))
      .constructor({{"x", str(reflect::kInt32Type)}, {"y", str(reflect::kInt32Type)}},
                   [](DynObject& self, Args a) {
                     self.set("x", a[0]);
                     self.set("y", a[1]);
                   })
      .method("getX", str(reflect::kInt32Type), {},
              [](DynObject& self, Args) { return self.get("x"); })
      .method("getY", str(reflect::kInt32Type), {},
              [](DynObject& self, Args) { return self.get("y"); })
      .build();
}

}  // namespace

std::shared_ptr<const Assembly> tagged_a() {
  auto assembly = std::make_shared<Assembly>("taggedA.geometry");
  assembly->add_type(tagged_point("taggedA", true));
  return assembly;
}

std::shared_ptr<const Assembly> tagged_b() {
  auto assembly = std::make_shared<Assembly>("taggedB.geometry");
  assembly->add_type(tagged_point("taggedB", true));
  assembly->add_type(tagged_point("taggedB", false));  // untagged twin
  return assembly;
}

std::shared_ptr<const Assembly> print_shop() {
  auto assembly = std::make_shared<Assembly>("shopA.devices");
  assembly->add_type(
      TypeBuilder("shopA", "Printer")
          .field("name", str(reflect::kStringType))
          .field("queue", str(reflect::kInt32Type))
          .constructor({{"name", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) { self.set("name", a[0]); })
          .method("print", str(reflect::kInt32Type),
                  {{"doc", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    const auto pages =
                        static_cast<std::int32_t>(a[0].as_string().size() / 10 + 1);
                    self.set("queue", Value(self.get("queue").as_int32() + pages));
                    return Value(pages);
                  })
          .method("getQueueLength", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("queue"); })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> office_devices() {
  auto assembly = std::make_shared<Assembly>("officeB.devices");
  assembly->add_type(
      TypeBuilder("officeB", "Printer")
          .field("printerName", str(reflect::kStringType))
          .field("queue", str(reflect::kInt32Type))
          .constructor({{"printerName", str(reflect::kStringType)}},
                       [](DynObject& self, Args a) { self.set("printerName", a[0]); })
          .method("printDocument", str(reflect::kInt32Type),
                  {{"document", str(reflect::kStringType)}},
                  [](DynObject& self, Args a) {
                    const auto pages =
                        static_cast<std::int32_t>(a[0].as_string().size() / 10 + 1);
                    self.set("queue", Value(self.get("queue").as_int32() + pages));
                    return Value(pages);
                  })
          .method("getPrintQueueLength", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("queue"); })
          .build());
  return assembly;
}

std::shared_ptr<const Assembly> wide_type(const std::string& ns, const std::string& name,
                                          std::size_t field_count,
                                          std::size_t method_count) {
  auto assembly = std::make_shared<Assembly>(ns + ".generated");
  TypeBuilder builder(ns, name);
  for (std::size_t i = 0; i < field_count; ++i) {
    builder.field("f" + std::to_string(i),
                  i % 2 == 0 ? str(reflect::kInt32Type) : str(reflect::kStringType));
  }
  for (std::size_t i = 0; i < method_count; ++i) {
    const std::string field_name = "f" + std::to_string(i % std::max<std::size_t>(
                                                                field_count, 1));
    const std::string type_name = (i % std::max<std::size_t>(field_count, 1)) % 2 == 0
                                      ? str(reflect::kInt32Type)
                                      : str(reflect::kStringType);
    if (field_count == 0) {
      builder.method("m" + std::to_string(i), str(reflect::kInt32Type), {},
                     [](DynObject&, Args) { return Value(std::int32_t{0}); });
    } else {
      builder.method("getF" + std::to_string(i % field_count), type_name, {},
                     [field_name](DynObject& self, Args) { return self.get(field_name); });
    }
  }
  assembly->add_type(builder.build());
  return assembly;
}

std::shared_ptr<const Assembly> deep_type_chain(const std::string& ns, std::size_t depth) {
  auto assembly = std::make_shared<Assembly>(ns + ".chain");
  for (std::size_t i = 0; i < depth; ++i) {
    TypeBuilder builder(ns, "T" + std::to_string(i));
    if (i + 1 < depth) {
      // Qualified reference: two chains in different namespaces must not be
      // *textually* identical (they would short-circuit as equivalent), the
      // conformance recursion is the point of this fixture.
      const std::string child_type = ns + ".T" + std::to_string(i + 1);
      builder.field("child", child_type)
          .method("getChild", child_type, {},
                  [](DynObject& self, Args) { return self.get("child"); });
    } else {
      builder.field("payload", str(reflect::kInt32Type))
          .method("getPayload", str(reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("payload"); });
    }
    assembly->add_type(builder.build());
  }
  return assembly;
}

}  // namespace pti::fixtures
