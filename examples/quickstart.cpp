// Quickstart — the paper's Section 3.1 scenario in one page.
//
// Two programmers implement the same `Person` module with different method
// names (setName/getName vs setPersonName/getPersonName). With implicit
// structural conformance, either implementation can be used as the other.
//
// The v2 API is handle-based: resolve a type name once with type(), then
// pass the TypeHandle on every call — make/subscribe/check never re-hash
// the name. (The string forms still work; see docs/API.md for the
// migration guide.)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"

int main() {
  using pti::reflect::Value;

  // One simulated universe, two participants.
  pti::core::InteropSystem system;
  auto& alice = system.create_runtime("alice");
  auto& bob = system.create_runtime("bob");

  // Each team publishes its own types (metadata + code) and resolves the
  // ones it works with to handles, once.
  alice.publish_assembly(pti::fixtures::team_a_people());  // getName/setName
  bob.publish_assembly(pti::fixtures::team_b_people());    // getPersonName/...
  const auto person_a = alice.type("teamA.Person");
  const auto person_b = bob.type("teamB.Person");

  // Bob subscribes with HIS type. Alice has never seen it. The returned
  // Subscription deregisters the handler when it goes out of scope.
  auto sub = bob.subscribe(person_b, [&](const pti::transport::DeliveredObject& event) {
    // The delivered object was a teamA.Person; `adapted` lets bob use it
    // through teamB's interface, renames included.
    const std::string name = bob.call(event.adapted, "getPersonName").as_string();
    std::printf("bob received a conformant person: %s\n", name.c_str());

    const Value rename[] = {Value("Dr. " + name)};
    bob.call(event.adapted, "setPersonName", rename);
    std::printf("bob renamed them to: %s\n",
                bob.call(event.adapted, "getPersonName").as_string().c_str());
  });

  // Alice sends HER person by value. The optimistic protocol ships the
  // object, then the type description, then the code — each only on demand.
  const Value args[] = {Value("Ada")};
  const auto ack = alice.send("bob", alice.make(person_a, args));

  std::printf("delivered=%s matched_interest=%s\n", ack.delivered ? "yes" : "no",
              ack.detail.c_str());
  // Conformance queries by handle are string-free; bob learned teamA.Person
  // from the exchange above, so he can hold a handle to it now.
  std::printf("conformance verdict (teamA.Person -> teamB.Person): %s\n",
              bob.conforms(bob.type("teamA.Person"), person_b) ? "conformant"
                                                               : "NOT conformant");
  return ack.delivered ? 0 : 1;
}
