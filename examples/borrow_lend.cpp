// borrow_lend — the borrow/lend abstraction with a type-conformance
// criterion (paper Section 8, application #2).
//
// A print shop lends its Printer. An office borrows "anything usable as
// my officeB.Printer" — a type the lender has never seen. The lent
// resource stays on the lender; the borrower drives it pass-by-reference
// through a dynamic proxy stacked on a remoting proxy (paper Section 6.2).
//
// Build & run:  ./build/examples/borrow_lend
#include <cstdio>

#include "bl/borrow_lend.hpp"
#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"

int main() {
  using pti::reflect::Value;

  pti::core::InteropSystem system;
  auto& shop = system.create_runtime("print-shop");
  auto& office = system.create_runtime("office");
  shop.publish_assembly(pti::fixtures::print_shop());       // shopA.Printer
  office.publish_assembly(pti::fixtures::office_devices()); // officeB.Printer

  pti::bl::Directory directory;
  pti::bl::Lender lender(shop, directory);
  pti::bl::Borrower borrower(office, directory);

  // The shop lends two printers (made through a v2 handle, resolved once).
  const auto printer_a = shop.type("shopA.Printer");
  const Value p1[] = {Value("laser-1")};
  const Value p2[] = {Value("inkjet-2")};
  auto laser = shop.make(printer_a, p1);
  lender.lend(laser);
  lender.lend(shop.make(printer_a, p2));
  std::printf("shop lent 2 printers (type shopA.Printer)\n");

  // The office borrows by ITS criterion type.
  auto borrowed = borrower.borrow("officeB.Printer");
  if (!borrowed) {
    std::printf("nothing conformant to borrow!\n");
    return 1;
  }
  std::printf("office borrowed '%s' object #%llu from '%s'\n",
              borrowed->advert.type_name.c_str(),
              static_cast<unsigned long long>(borrowed->advert.object_id),
              borrowed->advert.lender.c_str());

  // Drive it through the office's own interface: printDocument ->
  // (dynamic proxy, rename) -> print -> (remoting proxy) -> shop.
  const Value doc[] = {Value(std::string(120, '#'))};
  const Value pages = office.call(borrowed->handle, "printDocument", doc);
  std::printf("printed a document: %d pages\n", pages.as_int32());
  std::printf("queue length seen by office : %d\n",
              office.call(borrowed->handle, "getPrintQueueLength").as_int32());
  std::printf("queue length on the shop side: %d (state lives on the lender)\n",
              laser->get("queue").as_int32());

  // A second borrower request takes the remaining printer; a third fails.
  auto second = borrower.borrow("officeB.Printer");
  std::printf("second borrow: %s\n", second ? "granted" : "denied");
  auto third = borrower.borrow("officeB.Printer");
  std::printf("third borrow : %s (pool exhausted)\n", third ? "granted" : "denied");

  // Returning a resource makes it available again.
  borrower.give_back(*borrowed);
  auto fourth = borrower.borrow("officeB.Printer");
  std::printf("after give_back: %s\n", fourth ? "granted again" : "denied");

  return (pages.as_int32() == 13 && !third && fourth) ? 0 : 1;
}
