// cross_team_person — a verbose walk-through of the optimistic transport
// protocol (paper Fig. 1), printing every protocol-visible step and the
// network cost of each phase.
//
// Scenario: alice (teamA types) pushes Person objects to bob (teamB
// types). The first push triggers the full five-step dance; the second
// push shows the caches at work; a push of a non-conformant Account shows
// the rejection path that never downloads code.
//
// Build & run:  ./build/examples/cross_team_person
#include <cstdio>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"

namespace {

void print_phase(const char* title, const pti::core::InteropSystem& system,
                 std::uint64_t& last_bytes, std::uint64_t& last_msgs,
                 const pti::transport::ProtocolStats& receiver_stats) {
  const auto& net = const_cast<pti::core::InteropSystem&>(system).network().stats();
  std::printf("%-46s  +%6llu bytes  +%2llu msgs   [%s]\n", title,
              static_cast<unsigned long long>(net.bytes - last_bytes),
              static_cast<unsigned long long>(net.messages - last_msgs),
              receiver_stats.summary().c_str());
  last_bytes = net.bytes;
  last_msgs = net.messages;
}

}  // namespace

int main() {
  using pti::reflect::Value;

  pti::core::InteropSystem system;
  auto& alice = system.create_runtime("alice");
  auto& bob = system.create_runtime("bob");
  alice.publish_assembly(pti::fixtures::team_a_people());
  alice.publish_assembly(pti::fixtures::bank_accounts());
  bob.publish_assembly(pti::fixtures::team_b_people());
  // Resolve each name to a TypeHandle once; every later make/subscribe is
  // string-free (v2 API).
  const auto person_a = alice.type("teamA.Person");
  const auto address_a = alice.type("teamA.Address");
  const auto account = alice.type("bank.Account");
  auto sub =
      bob.subscribe(bob.type("teamB.Person"), [](const pti::transport::DeliveredObject&) {});

  std::uint64_t bytes = 0, msgs = 0;
  std::printf("== optimistic protocol walk-through (Fig. 1) ==\n");

  // --- first push: the full five steps -----------------------------------
  const Value ada[] = {Value("Ada")};
  auto person = alice.make(person_a, ada);
  const Value addr[] = {Value("Main St"), Value(std::int32_t{1015})};
  person->set("address", Value(alice.make(address_a, addr)));

  (void)alice.send("bob", person);
  print_phase("push #1 (unknown type: steps 1-5)", system, bytes, msgs, bob.stats());

  // --- second push: descriptions and code are cached ----------------------
  const Value grace[] = {Value("Grace")};
  (void)alice.send("bob", alice.make(person_a, grace));
  print_phase("push #2 (cached: object + ack only)", system, bytes, msgs, bob.stats());

  // --- non-conformant push: rejected before any code download -------------
  const Value eve[] = {Value("Eve")};
  (void)alice.send("bob", alice.make(account, eve));
  print_phase("push #3 (non-conformant: rejected)", system, bytes, msgs, bob.stats());

  // --- use the delivered objects through bob's own interface --------------
  std::printf("\n== delivered objects, seen through teamB.Person ==\n");
  for (const auto& event : bob.peer().delivered()) {
    const std::string name = bob.call(event.adapted, "getPersonName").as_string();
    const Value address = bob.call(event.adapted, "getAddress");
    const std::string street =
        address.is_null()
            ? "(no address)"
            : bob.call(address.as_object(), "getStreetName").as_string();
    std::printf("  %s @ %s  (sender=%s, matched=%s)\n", name.c_str(), street.c_str(),
                event.sender.c_str(), event.interest_type.c_str());
  }

  std::printf("\n== final accounting ==\n");
  std::printf("  bob:   %s\n", bob.stats().summary().c_str());
  std::printf("  alice: %s\n", alice.stats().summary().c_str());
  std::printf("  conformance cache: %zu entries, hit rate %.0f%%\n",
               bob.peer().conformance_cache().size(),
               100.0 * bob.peer().conformance_cache().stats().hit_rate());
  std::printf("  virtual time elapsed: %.2f ms\n",
              static_cast<double>(system.network().clock().now_ns()) / 1e6);
  return 0;
}
