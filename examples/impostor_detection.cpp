// impostor_detection — conformance diagnostics and the behavioral probe.
//
// Three things the library offers beyond the core protocol:
//   1. the textual type-declaration language (declare interest types
//      without writing builder code);
//   2. explain(): human-readable conformance reports, including the
//      ambiguity cases the paper leaves "up to the programmer";
//   3. the behavioral probe (the paper's Section 4.1 "future work"):
//      structural conformance cannot tell an honest implementation from a
//      structurally perfect impostor — differential testing can.
//
// Build & run:  ./build/examples/impostor_detection
#include <cstdio>

#include "conform/behavioral.hpp"
#include "conform/conformance_checker.hpp"
#include "conform/explain.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/type_parser.hpp"

int main() {
  pti::reflect::Domain domain;
  domain.load_assembly(pti::fixtures::team_a_people());
  domain.load_assembly(pti::fixtures::team_b_people());
  domain.load_assembly(pti::fixtures::team_evil_people());

  // A consumer declares its expectation textually — no code needed for a
  // type used only as a conformance criterion.
  pti::reflect::declare_types(domain.registry(), R"(
    namespace consumer;
    class Person {
      private string name;
      Person(string name);
      string getName();
      void setName(string name);
    }
  )");

  pti::conform::ConformanceChecker checker(domain.registry());

  std::printf("== structural verdicts against consumer.Person ==\n\n");
  for (const char* candidate : {"teamA.Person", "teamB.Person", "evilC.Person"}) {
    const auto result = checker.check(candidate, "consumer.Person");
    std::printf("--- %s ---\n%s\n", candidate,
                pti::conform::explain(result).c_str());
  }

  // Both teamB.Person and evilC.Person pass the structural rules. The
  // behavioral probe (differential testing through the plan) separates
  // them — exercising each against teamA's reference implementation.
  std::printf("== behavioral probing against teamA.Person ==\n\n");
  for (const char* candidate : {"teamB.Person", "evilC.Person"}) {
    const auto structural =
        checker.check(*domain.registry().find(candidate),
                      *domain.registry().find("teamA.Person"));
    const auto report = pti::conform::probe_behavioral_conformance(
        domain, *domain.registry().find(candidate),
        *domain.registry().find("teamA.Person"), structural.plan);
    std::printf("%s: structurally conformant, behaviorally %s\n", candidate,
                report.equivalent ? "EQUIVALENT" : "DIVERGENT");
    std::printf("  (%zu trials, %zu calls, %zu methods tested, %zu skipped)\n",
                report.trials_run, report.calls_made, report.methods_testable,
                report.methods_skipped);
    if (!report.equivalent) {
      std::printf("  counterexample: %s\n", report.counterexample.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
