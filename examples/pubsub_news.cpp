// pubsub_news — type-based publish/subscribe with type interoperability
// (paper Section 8, application #1).
//
// Two news agencies publish events of their own, independently designed
// types (`NewsFlash` vs a differently-shaped `NewsFlash` and an unrelated
// `StockQuote`). A reader subscribes with ITS own event type and receives
// every conformant event, adapted — no a-priori agreement on types, the
// problem classic TPS has.
//
// This example also shows how new event types are defined from scratch
// with the TypeBuilder API (rather than the canned fixtures).
//
// Build & run:  ./build/examples/pubsub_news
#include <cstdio>

#include "core/interop.hpp"
#include "reflect/primitives.hpp"
#include "reflect/type_builder.hpp"
#include "tps/tps.hpp"

namespace {

using pti::reflect::Args;
using pti::reflect::Assembly;
using pti::reflect::DynObject;
using pti::reflect::TypeBuilder;
using pti::reflect::Value;

/// Agency one's event: headline + importance.
std::shared_ptr<const Assembly> reuters_types() {
  auto assembly = std::make_shared<Assembly>("reuters.events");
  assembly->add_type(
      TypeBuilder("reuters", "NewsFlash")
          .field("headline", std::string(pti::reflect::kStringType))
          .field("importance", std::string(pti::reflect::kInt32Type))
          .constructor({{"headline", std::string(pti::reflect::kStringType)},
                        {"importance", std::string(pti::reflect::kInt32Type)}},
                       [](DynObject& self, Args a) {
                         self.set("headline", a[0]);
                         self.set("importance", a[1]);
                       })
          .method("getHeadline", std::string(pti::reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("headline"); })
          .method("getImportance", std::string(pti::reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("importance"); })
          .build());
  return assembly;
}

/// Agency two: same module, different vocabulary (token-conformant names).
std::shared_ptr<const Assembly> bloomberg_types() {
  auto assembly = std::make_shared<Assembly>("bloomberg.events");
  assembly->add_type(
      TypeBuilder("bloomberg", "NewsFlash")
          .field("newsHeadline", std::string(pti::reflect::kStringType))
          .field("newsImportance", std::string(pti::reflect::kInt32Type))
          .constructor({{"newsHeadline", std::string(pti::reflect::kStringType)},
                        {"newsImportance", std::string(pti::reflect::kInt32Type)}},
                       [](DynObject& self, Args a) {
                         self.set("newsHeadline", a[0]);
                         self.set("newsImportance", a[1]);
                       })
          .method("getNewsHeadline", std::string(pti::reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("newsHeadline"); })
          .method("getNewsImportance", std::string(pti::reflect::kInt32Type), {},
                  [](DynObject& self, Args) { return self.get("newsImportance"); })
          .build());
  // Plus a type no news reader cares about.
  assembly->add_type(
      TypeBuilder("bloomberg", "StockQuote")
          .field("symbol", std::string(pti::reflect::kStringType))
          .field("price", std::string(pti::reflect::kFloat64Type))
          .constructor({{"symbol", std::string(pti::reflect::kStringType)},
                        {"price", std::string(pti::reflect::kFloat64Type)}},
                       [](DynObject& self, Args a) {
                         self.set("symbol", a[0]);
                         self.set("price", a[1]);
                       })
          .method("getSymbol", std::string(pti::reflect::kStringType), {},
                  [](DynObject& self, Args) { return self.get("symbol"); })
          .build());
  return assembly;
}

}  // namespace

int main() {
  pti::core::InteropSystem system;
  pti::tps::TpsDomain domain(system);

  auto& reuters = domain.create_node("reuters");
  auto& bloomberg = domain.create_node("bloomberg");
  auto& reader = domain.create_node("reader");

  reuters.offer_assembly(reuters_types());
  bloomberg.offer_assembly(bloomberg_types());
  // The reader subscribes with reuters' vocabulary — it has never seen
  // bloomberg's types.
  reader.offer_assembly(reuters_types());

  // v2 handles: resolve each publisher's event type once.
  const auto reuters_news = reuters.runtime().type("reuters.NewsFlash");
  const auto bloomberg_news = bloomberg.runtime().type("bloomberg.NewsFlash");
  const auto bloomberg_quote = bloomberg.runtime().type("bloomberg.StockQuote");

  reader.subscribe("reuters.NewsFlash",
                   [&](const pti::transport::DeliveredObject& event) {
                     auto& rt = reader.runtime();
                     std::printf("reader got [%d] \"%s\"   (real type: %s)\n",
                                 rt.call(event.adapted, "getImportance").as_int32(),
                                 rt.call(event.adapted, "getHeadline").as_string().c_str(),
                                 event.object->type_name().c_str());
                   });

  // Reuters publishes its own events.
  const Value r1[] = {Value("Moon landing re-enacted"), Value(std::int32_t{7})};
  auto report1 = reuters.publish(reuters.runtime().make(reuters_news, r1));

  // Bloomberg publishes a *differently shaped* news flash — delivered via
  // implicit structural conformance — and a stock quote — filtered out.
  const Value b1[] = {Value("Markets rally on middleware news"), Value(std::int32_t{9})};
  auto report2 = bloomberg.publish(bloomberg.runtime().make(bloomberg_news, b1));
  const Value q1[] = {Value("PTI"), Value(42.0)};
  auto report3 = bloomberg.publish(bloomberg.runtime().make(bloomberg_quote, q1));

  std::printf("\npublish results (recipients/delivered): reuters %zu/%zu, "
              "bloomberg news %zu/%zu, bloomberg quote %zu/%zu\n",
              report1.recipients, report1.delivered, report2.recipients,
              report2.delivered, report3.recipients, report3.delivered);
  std::printf("reader stats: %s\n", reader.runtime().stats().summary().c_str());
  return (report1.delivered == 1 && report2.delivered == 1 && report3.delivered == 0)
             ? 0
             : 1;
}
