// E3 — object serialization and deserialization (paper §7.3).
//
// The paper (de)serializes a Person instance 1000 times with the SOAP
// mechanism and reports:
//   serialize    ~16.68 ms / 1000  (≈16.7 us each)
//   deserialize  ~1.32 ms / 1000   (≈1.3 us each)
// i.e. SOAP serialization is markedly more expensive than deserialization
// ("creating a SOAP structure from an object is more complex than the
// opposite").
//
// We measure all three mechanisms (SOAP, binary, XML) in both directions,
// report payload sizes, and sweep object-graph size.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "serial/object_serializer.hpp"

namespace {

using namespace pti;
using reflect::Value;

class Fixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!domain_) {
      domain_ = std::make_unique<reflect::Domain>();
      bench::load_people(*domain_);
      registry_ = serial::SerializerRegistry::with_defaults();
    }
  }
  std::unique_ptr<reflect::Domain> domain_;
  serial::SerializerRegistry registry_;
};

const char* encoding_name(std::int64_t index) {
  static const char* names[] = {"soap", "binary", "xml"};
  return names[index];
}

BENCHMARK_DEFINE_F(Fixture, Serialize)(benchmark::State& state) {
  bench::paper_reference("E3 object serialization (§7.3)",
                         "SOAP serialize 16.68 us vs deserialize 1.32 us per object");
  serial::ObjectSerializer& s = registry_.get(encoding_name(state.range(0)));
  auto person = bench::make_person_a(*domain_);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto payload = s.serialize(Value(person));
    bytes = payload.size();
    benchmark::DoNotOptimize(payload);
  }
  state.SetLabel(encoding_name(state.range(0)));
  state.counters["payload_bytes"] = static_cast<double>(bytes);
}
BENCHMARK_REGISTER_F(Fixture, Serialize)->Arg(0)->Arg(1)->Arg(2);

BENCHMARK_DEFINE_F(Fixture, Deserialize)(benchmark::State& state) {
  serial::ObjectSerializer& s = registry_.get(encoding_name(state.range(0)));
  const auto payload = s.serialize(Value(bench::make_person_a(*domain_)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.deserialize(payload));
  }
  state.SetLabel(encoding_name(state.range(0)));
}
BENCHMARK_REGISTER_F(Fixture, Deserialize)->Arg(0)->Arg(1)->Arg(2);

/// Graph-size sweep: a chain of N persons (each the "friend" stored in a
/// list field) serialized with SOAP vs binary.
void BM_SerializeGraphSweep(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  serial::SerializerRegistry registry = serial::SerializerRegistry::with_defaults();
  serial::ObjectSerializer& s =
      registry.get(state.range(1) == 0 ? "soap" : "binary");

  const auto count = static_cast<std::size_t>(state.range(0));
  Value::List people;
  for (std::size_t i = 0; i < count; ++i) {
    people.push_back(Value(bench::make_person_a(domain, "P" + std::to_string(i))));
  }
  const Value root(std::move(people));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto payload = s.serialize(root);
    bytes = payload.size();
    benchmark::DoNotOptimize(payload);
  }
  state.SetLabel(state.range(1) == 0 ? "soap" : "binary");
  state.counters["objects"] = static_cast<double>(count);
  state.counters["payload_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeGraphSweep)
    ->Args({1, 0})
    ->Args({10, 0})
    ->Args({100, 0})
    ->Args({1, 1})
    ->Args({10, 1})
    ->Args({100, 1});

}  // namespace

BENCHMARK_MAIN();
