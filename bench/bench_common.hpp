// Shared helpers for the benchmark harness. Each bench binary reproduces
// one experiment of the paper's Section 7 (see DESIGN.md's per-experiment
// index); the `paper_reference` banners restate what the paper measured so
// the output can be read side by side with it.
#pragma once

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <memory>
#include <string>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/dyn_object.hpp"
#include "reflect/value.hpp"
#include "transport/async_transport.hpp"

namespace pti::bench {

/// Prints the paper's reference numbers once per binary.
inline void paper_reference(const char* experiment, const char* text) {
  static bool printed = false;
  if (!printed) {
    std::printf("# %s\n# paper: %s\n", experiment, text);
    printed = true;
  }
}

inline void load_people(reflect::Domain& domain) {
  domain.load_assembly(fixtures::team_a_people(), "net://alice/teamA.people");
  domain.load_assembly(fixtures::team_b_people(), "net://bob/teamB.people");
}

/// The paper's measurement subject: a simple Person instance (with the
/// nested address, so object graphs are non-trivial).
inline std::shared_ptr<reflect::DynObject> make_person_a(reflect::Domain& domain,
                                                         std::string_view name = "Alice") {
  const reflect::Value args[] = {reflect::Value(name)};
  auto person = domain.instantiate("teamA.Person", args);
  const reflect::Value addr[] = {reflect::Value("Main St"),
                                 reflect::Value(std::int32_t{1015})};
  person->set("address", reflect::Value(domain.instantiate("teamA.Address", addr)));
  return person;
}

inline std::shared_ptr<reflect::DynObject> make_person_b(reflect::Domain& domain,
                                                         std::string_view name = "Bob") {
  const reflect::Value args[] = {reflect::Value(name)};
  auto person = domain.instantiate("teamB.Person", args);
  const reflect::Value addr[] = {reflect::Value("Rue du Lac"),
                                 reflect::Value(std::int32_t{1007})};
  person->set("address", reflect::Value(domain.instantiate("teamB.Address", addr)));
  return person;
}

/// Shared universe for the concurrent full-protocol push benchmarks
/// (bench_transport's BM_AsyncPushThroughput/BM_AsyncPushPipelined and
/// bench_concurrent's BM_ConcurrentProtocolPush measure the same warmed
/// steady state — this is the single definition of it): one InteropSystem
/// over a 2-worker AsyncTransport, kPairs disjoint sender -> receiver
/// pairs, types published, interests subscribed, caches warmed by one
/// push each. Delivered-object retention is off — a server-shaped peer
/// must not grow per push. `prefix` keeps the two binaries' peer/type
/// names from colliding in the process-wide symbol table semantics-wise
/// (each binary is its own process; the prefix just keeps logs readable).
struct ConcurrentPushEnv {
  static constexpr int kPairs = 4;
  core::InteropSystem system;
  std::array<core::InteropRuntime*, kPairs> senders{};
  std::array<std::string, kPairs> receiver_names;
  std::array<std::shared_ptr<reflect::DynObject>, kPairs> objects;

  /// Default transport: the 2-worker AsyncTransport. Pass any other
  /// Transport (e.g. SocketTransport) to measure the same warmed protocol
  /// workload over it, and/or a PeerConfig (e.g. use_sessions) to measure
  /// a different protocol variant over the same warmed pairs.
  explicit ConcurrentPushEnv(const std::string& prefix,
                             std::unique_ptr<transport::Transport> transport = nullptr,
                             transport::PeerConfig config = {})
      : system(transport ? std::move(transport)
                         : std::make_unique<transport::AsyncTransport>(
                               transport::AsyncTransportConfig{.workers = 2,
                                                               .max_inbox = 256})) {
    config.retain_delivered = false;
    for (int p = 0; p < kPairs; ++p) {
      const std::string ns = prefix + "ns" + std::to_string(p);
      auto& sender = system.create_runtime(prefix + "s" + std::to_string(p), config);
      auto& receiver = system.create_runtime(prefix + "r" + std::to_string(p), config);
      (void)sender.publish_assembly(fixtures::wide_type(ns, "Event", 4, 4));
      (void)receiver.publish_assembly(fixtures::wide_type(ns + "r", "Event", 4, 4));
      receiver.subscribe(ns + "r.Event", [](const transport::DeliveredObject&) {});
      senders[p] = &sender;
      receiver_names[p] = prefix + "r" + std::to_string(p);
      objects[p] = sender.make(ns + ".Event");
      (void)sender.send(receiver_names[p], objects[p]);  // warm metadata + code
    }
  }
};

/// The measured loop shared by the concurrent push benchmarks: thread i
/// drives pair i synchronously; inbound handling of distinct peers runs
/// concurrently over the shared transport/stores.
inline void run_concurrent_push(benchmark::State& state, ConcurrentPushEnv& env) {
  const int pair = state.thread_index() % ConcurrentPushEnv::kPairs;
  core::InteropRuntime& sender = *env.senders[pair];
  const std::string& to = env.receiver_names[pair];
  const auto& object = env.objects[pair];
  for (auto _ : state) {
    benchmark::DoNotOptimize(sender.send(to, object));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace pti::bench
