// Shared helpers for the benchmark harness. Each bench binary reproduces
// one experiment of the paper's Section 7 (see DESIGN.md's per-experiment
// index); the `paper_reference` banners restate what the paper measured so
// the output can be read side by side with it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/dyn_object.hpp"
#include "reflect/value.hpp"

namespace pti::bench {

/// Prints the paper's reference numbers once per binary.
inline void paper_reference(const char* experiment, const char* text) {
  static bool printed = false;
  if (!printed) {
    std::printf("# %s\n# paper: %s\n", experiment, text);
    printed = true;
  }
}

inline void load_people(reflect::Domain& domain) {
  domain.load_assembly(fixtures::team_a_people(), "net://alice/teamA.people");
  domain.load_assembly(fixtures::team_b_people(), "net://bob/teamB.people");
}

/// The paper's measurement subject: a simple Person instance (with the
/// nested address, so object graphs are non-trivial).
inline std::shared_ptr<reflect::DynObject> make_person_a(reflect::Domain& domain,
                                                         std::string_view name = "Alice") {
  const reflect::Value args[] = {reflect::Value(name)};
  auto person = domain.instantiate("teamA.Person", args);
  const reflect::Value addr[] = {reflect::Value("Main St"),
                                 reflect::Value(std::int32_t{1015})};
  person->set("address", reflect::Value(domain.instantiate("teamA.Address", addr)));
  return person;
}

inline std::shared_ptr<reflect::DynObject> make_person_b(reflect::Domain& domain,
                                                         std::string_view name = "Bob") {
  const reflect::Value args[] = {reflect::Value(name)};
  auto person = domain.instantiate("teamB.Person", args);
  const reflect::Value addr[] = {reflect::Value("Rue du Lac"),
                                 reflect::Value(std::int32_t{1007})};
  person->set("address", reflect::Value(domain.instantiate("teamB.Address", addr)));
  return person;
}

}  // namespace pti::bench
