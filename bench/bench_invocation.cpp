// E1 — invocation time (paper §7.1).
//
// The paper calls Person.getName() 100 x 1e6 times and reports:
//   direct call           ~0.000142 ms  (142 ns on a 2002 Pentium 3)
//   dynamic-proxy call    ~0.03 ms      (~211x slower)
// and argues the proxy overhead, while large relative to a direct call, is
// negligible against conformance checking and transfer costs.
//
// We measure the same ladder on our substrate: a native C++ call, direct
// dynamic dispatch through the reflection substrate (the platform call),
// and proxied dispatch at nesting depths 1-3 (each level adds one
// rename/permute adaptation, the paper's "depth of the matching").
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "proxy/dynamic_proxy.hpp"

namespace {

using namespace pti;
using reflect::Value;

struct NativePerson {
  std::string name;
  [[nodiscard]] const std::string& get_name() const noexcept { return name; }
};

void BM_NativeCppCall(benchmark::State& state) {
  bench::paper_reference("E1 invocation (§7.1)",
                         "direct 0.000142 ms vs proxy 0.03 ms per call (~211x)");
  NativePerson person{"Alice"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(person.get_name());
  }
}
BENCHMARK(BM_NativeCppCall);

void BM_DirectDynamicDispatch(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  auto person = bench::make_person_a(domain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(domain.invoke(*person, "getName"));
  }
}
BENCHMARK(BM_DirectDynamicDispatch);

/// Proxy dispatch at configurable nesting depth: depth 1 wraps the teamB
/// person as teamA.Person; depth 2 wraps that proxy as teamB.Person again,
/// and so on — each hop re-applies the rename machinery.
void BM_ProxyDispatch(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker(domain.registry(), {}, &cache);
  proxy::ProxyFactory proxies(domain, checker);

  auto object = bench::make_person_b(domain);
  const char* targets[] = {"teamA.Person", "teamB.Person"};
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (std::size_t level = 0; level < depth; ++level) {
    object = proxies.wrap(object, targets[level % 2]);
  }
  const char* method = depth % 2 == 1 ? "getName" : "getPersonName";

  for (auto _ : state) {
    benchmark::DoNotOptimize(proxies.invoke(object, method, {}));
  }
  state.counters["proxy_depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_ProxyDispatch)->Arg(1)->Arg(2)->Arg(3);

/// Proxied call with argument adaptation (setName through the rename).
void BM_ProxyDispatchWithArgs(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker(domain.registry(), {}, &cache);
  proxy::ProxyFactory proxies(domain, checker);
  auto as_a = proxies.wrap(bench::make_person_b(domain), "teamA.Person");
  const Value args[] = {Value("Renamed")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxies.invoke(as_a, "setName", args));
  }
}
BENCHMARK(BM_ProxyDispatchWithArgs);

/// Permuted two-argument dispatch (planner -> agenda reschedule).
void BM_ProxyDispatchPermutedArgs(benchmark::State& state) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::planner_meetings());
  domain.load_assembly(fixtures::agenda_meetings());
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker(domain.registry(), {}, &cache);
  proxy::ProxyFactory proxies(domain, checker);

  const Value ctor_args[] = {Value(std::int64_t{900}), Value("standup")};
  auto meeting = domain.instantiate("agenda.Meeting", ctor_args);
  auto as_planner = proxies.wrap(meeting, "planner.Meeting");
  const Value args[] = {Value("moved"), Value(std::int64_t{1600})};
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxies.invoke(as_planner, "reschedule", args));
  }
}
BENCHMARK(BM_ProxyDispatchPermutedArgs);

}  // namespace

BENCHMARK_MAIN();
