// E2 — creation, serialization and deserialization of type descriptions
// (paper §7.2).
//
// The paper creates the Person type description and serializes it to an
// XML message 1000 times (averaged over 100 runs):
//   create + serialize   ~6.14 ms / 1000  (≈6.1 us each)
//   deserialize          ~2.34 ms / 1000  (≈2.3 us each)
// and notes the cost is paid once per *type*, not per object.
//
// We measure the same three stages — introspection (creation), XML
// serialization and XML parsing — for the Person type and for synthetic
// types of growing width.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "reflect/introspect.hpp"
#include "serial/typedesc_xml.hpp"

namespace {

using namespace pti;

void BM_CreateDescription(benchmark::State& state) {
  bench::paper_reference("E2 type descriptions (§7.2)",
                         "create+serialize 6.14 us, deserialize 2.34 us per description");
  const auto assembly = fixtures::team_a_people();
  const reflect::NativeType* person = assembly->find_type("teamA.Person");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reflect::introspect(*person, assembly->name(), "net://alice/teamA.people"));
  }
}
BENCHMARK(BM_CreateDescription);

void BM_CreateAndSerializeDescription(benchmark::State& state) {
  // The paper's §7.2 "creation and serialization" aggregate.
  const auto assembly = fixtures::team_a_people();
  const reflect::NativeType* person = assembly->find_type("teamA.Person");
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto d =
        reflect::introspect(*person, assembly->name(), "net://alice/teamA.people");
    const std::string xml_text = serial::type_description_to_string(d);
    bytes = xml_text.size();
    benchmark::DoNotOptimize(xml_text);
  }
  state.counters["description_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CreateAndSerializeDescription);

void BM_DeserializeDescription(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  const std::string xml_text =
      serial::type_description_to_string(*domain.registry().find("teamA.Person"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::type_description_from_string(xml_text));
  }
}
BENCHMARK(BM_DeserializeDescription);

/// Width sweep: cost scales with the number of members the introspection
/// walk and XML writer must visit.
void BM_DescriptionWidthSweep(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const auto assembly = fixtures::wide_type("bench", "Widget", width, width);
  const reflect::NativeType* widget = assembly->find_type("bench.Widget");
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto d = reflect::introspect(*widget, assembly->name(), "");
    const std::string xml_text = serial::type_description_to_string(d);
    bytes = xml_text.size();
    benchmark::DoNotOptimize(xml_text);
  }
  state.counters["members"] = static_cast<double>(2 * width);
  state.counters["description_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_DescriptionWidthSweep)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_DeserializeWidthSweep(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const auto assembly = fixtures::wide_type("bench", "Widget", width, width);
  const auto d = reflect::introspect(*assembly->find_type("bench.Widget"),
                                     assembly->name(), "");
  const std::string xml_text = serial::type_description_to_string(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::type_description_from_string(xml_text));
  }
  state.counters["members"] = static_cast<double>(2 * width);
}
BENCHMARK(BM_DeserializeWidthSweep)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Structural fingerprint computation from a cold cache: one case-folding
/// hash pass over the whole description. Paid once per description; every
/// later structurally_equal() starts with an O(1) fingerprint compare.
void BM_FingerprintCompute(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const auto assembly = fixtures::wide_type("bench", "Widget", width, width);
  auto d = reflect::introspect(*assembly->find_type("bench.Widget"), assembly->name(), "");
  for (auto _ : state) {
    d.set_kind(d.kind());  // invalidates the memoized fingerprint
    benchmark::DoNotOptimize(d.fingerprint());
  }
  state.counters["members"] = static_cast<double>(2 * width);
}
BENCHMARK(BM_FingerprintCompute)->Arg(2)->Arg(32)->Arg(128);

/// structurally_equal on same-shape, differently-named types: the
/// fingerprint mismatch rejects in O(1) instead of walking every member.
void BM_StructuralCompareReject(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const auto wa = fixtures::wide_type("wa", "Widget", width, width);
  const auto wb = fixtures::wide_type("wb", "Gadget", width, width);
  const auto a = reflect::introspect(*wa->find_type("wa.Widget"), wa->name(), "");
  const auto b = reflect::introspect(*wb->find_type("wb.Gadget"), wb->name(), "");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.structurally_equal(b));
  }
  state.counters["members"] = static_cast<double>(2 * width);
}
BENCHMARK(BM_StructuralCompareReject)->Arg(2)->Arg(32)->Arg(128);

/// Registry resolution by qualified name: folds and hashes the probe on
/// the fly against the shared symbol table — no key strings built.
void BM_RegistryResolve(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(domain.registry().find("teamA.Person"));
    benchmark::DoNotOptimize(domain.registry().find("TEAMB.PERSON"));  // case-folded hit
    benchmark::DoNotOptimize(domain.registry().find("teamA.NoSuchType"));
  }
}
BENCHMARK(BM_RegistryResolve);

}  // namespace

BENCHMARK_MAIN();
