// Concurrent hot-path throughput — the scaling story of the sharded
// SymbolTable / TypeRegistry / ConformanceCache.
//
// PR 1 made the cached check ~19 ns single-threaded; this bench measures
// whether concurrent peers can actually exploit that: every benchmark runs
// at 1, 2 and 4 threads against ONE shared registry + cache + checker, so
// the numbers show aggregate items_per_second across threads. On a
// multi-core host the aggregate should grow with the thread count (shards
// mean distinct pairs rarely contend); on a single-vCPU container it can
// only stay flat — the interesting number there is that per-item cost does
// not collapse under contention.
//
// The single-thread rows double as the "no pessimization" guard: they are
// the same cached check()/conforms() paths BENCH_conformance measures, now
// paying one shared-lock per lookup.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "core/interop.hpp"
#include "reflect/type_registry.hpp"
#include "transport/async_transport.hpp"
#include "util/interning.hpp"

namespace {

using namespace pti;

/// One shared universe for all threads of all benchmarks: domain (registry),
/// cache, checker, and a warmed set of distinct conformant pairs spread
/// across cache shards. Magic-static init is thread-safe.
struct SharedEnv {
  reflect::Domain domain;
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker;
  const reflect::TypeDescription* source = nullptr;
  const reflect::TypeDescription* target = nullptr;
  std::vector<std::pair<const reflect::TypeDescription*, const reflect::TypeDescription*>>
      pairs;

  SharedEnv() : checker(domain.registry(), {}, &cache) {
    bench::load_people(domain);
    constexpr std::size_t kDepth = 64;
    domain.load_assembly(fixtures::deep_type_chain("da", kDepth));
    domain.load_assembly(fixtures::deep_type_chain("db", kDepth));
    source = domain.registry().find("teamB.Person");
    target = domain.registry().find("teamA.Person");
    (void)checker.check(*source, *target);  // warm the hot pair
    (void)checker.check(*domain.registry().find("db.T0"),
                        *domain.registry().find("da.T0"));  // warms every level
    for (std::size_t i = 0; i < kDepth; ++i) {
      const std::string level = "T" + std::to_string(i);
      pairs.emplace_back(domain.registry().find("db." + level),
                         domain.registry().find("da." + level));
    }
  }
};

SharedEnv& env() {
  static SharedEnv e;
  return e;
}

/// Cached full check (plan returned) on one hot pair, all threads hitting
/// the same cache shard — the worst case for lock contention.
void BM_ConcurrentCachedCheck(benchmark::State& state) {
  bench::paper_reference("E-conc: cached check, shared pair",
                         "aggregate throughput of the paper's conformance test "
                         "when peers share one warmed cache");
  SharedEnv& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.checker.check(*e.source, *e.target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentCachedCheck)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

/// Verdict-only cached conforms() on one hot pair.
void BM_ConcurrentCachedVerdict(benchmark::State& state) {
  SharedEnv& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.checker.conforms(*e.source, *e.target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentCachedVerdict)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

/// Cached verdicts across 64 distinct warmed pairs: each thread starts at a
/// different offset, so lookups spread across cache shards — the intended
/// steady state of a busy multi-tenant peer.
void BM_ConcurrentCachedVerdictManyPairs(benchmark::State& state) {
  SharedEnv& e = env();
  std::size_t next = static_cast<std::size_t>(state.thread_index()) * 17 % e.pairs.size();
  for (auto _ : state) {
    const auto& [source, target] = e.pairs[next];
    benchmark::DoNotOptimize(e.checker.conforms(*source, *target));
    next = (next + 1) % e.pairs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentCachedVerdictManyPairs)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// Zero-alloc registry resolution (symbol-table probe + sharded id map).
void BM_ConcurrentResolve(benchmark::State& state) {
  SharedEnv& e = env();
  reflect::TypeRegistry& registry = e.domain.registry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.resolve("teamA.Person", ""));
    benchmark::DoNotOptimize(registry.resolve("Address", "teamB"));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ConcurrentResolve)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

/// Interning an already-known name (the steady-state intern path: shared
/// shard lock, probe, return existing id).
void BM_ConcurrentInternHit(benchmark::State& state) {
  util::SymbolTable& table = util::SymbolTable::global();
  (void)table.intern("bench.concurrent.Hot");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.intern("bench.concurrent.Hot"));
    benchmark::DoNotOptimize(table.find_qualified("bench", "missing"));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ConcurrentInternHit)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

/// Full-stack concurrent pushes: one shared InteropSystem over the
/// thread-pool AsyncTransport, each bench thread driving its own warmed
/// sender->receiver pair. This is the whole protocol per item (envelope
/// build, 2 messages, cached conformance, dispatch) — the end-to-end
/// number the sharded stores and the atomic stats/clock exist for. The
/// env + measured loop live in bench_common.hpp, shared with
/// bench_transport's BM_AsyncPushThroughput.
bench::ConcurrentPushEnv& transport_env() {
  static bench::ConcurrentPushEnv e("c");
  return e;
}

void BM_ConcurrentProtocolPush(benchmark::State& state) {
  bench::paper_reference("E-conc: full protocol push over AsyncTransport",
                         "aggregate end-to-end push throughput across threads");
  bench::run_concurrent_push(state, transport_env());
}
BENCHMARK(BM_ConcurrentProtocolPush)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
