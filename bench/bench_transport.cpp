// E5 — the optimistic transport protocol (paper Fig. 1).
//
// The paper's protocol is "optimistic in the sense that the code of the
// object as well as its type representation are not always sent with the
// object itself, but only when needed", saving network resources. The
// paper gives no table for this; we quantify the claim the figure makes:
//
//   * bytes on the wire and message counts, optimistic vs eager, as the
//     number of objects per type grows (reuse amortizes metadata/code);
//   * the rejection path: non-conformant pushes cost only descriptions,
//     never code;
//   * crossover: with one object per type, eager's single round trip can
//     rival optimistic's extra requests — reuse is what pays.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/interop.hpp"

namespace {

using namespace pti;
using reflect::Value;

/// Runs `objects` pushes of `types` distinct wide types from one sender to
/// one subscriber; returns the network stats.
transport::NetStats run_scenario(transport::ProtocolMode mode, std::size_t objects,
                                 std::size_t types, bool conformant) {
  core::InteropSystem system;
  transport::PeerConfig config;
  config.mode = mode;
  core::InteropRuntime& sender = system.create_runtime("sender", config);
  core::InteropRuntime& receiver = system.create_runtime("receiver", config);

  for (std::size_t t = 0; t < types; ++t) {
    sender.publish_assembly(
        fixtures::wide_type("sns" + std::to_string(t), "Event" + std::to_string(t), 4, 4));
    // The receiver's interest types: same shape (conformant) or a
    // different-named, different-shaped type (non-conformant).
    receiver.publish_assembly(
        conformant
            ? fixtures::wide_type("rns" + std::to_string(t), "Event" + std::to_string(t),
                                  4, 4)
            : fixtures::wide_type("rns" + std::to_string(t), "Other" + std::to_string(t),
                                  3, 3));
    receiver.subscribe(
        "rns" + std::to_string(t) + "." +
            (conformant ? "Event" + std::to_string(t) : "Other" + std::to_string(t)),
        [](const transport::DeliveredObject&) {});
  }

  for (std::size_t i = 0; i < objects; ++i) {
    const std::string type_name =
        "sns" + std::to_string(i % types) + ".Event" + std::to_string(i % types);
    (void)sender.send("receiver", sender.make(type_name));
  }
  return system.network().stats();
}

void BM_Protocol(benchmark::State& state) {
  bench::paper_reference("E5 optimistic protocol (Fig. 1)",
                         "descriptions and code travel only on demand");
  const auto mode = state.range(0) == 0 ? transport::ProtocolMode::Optimistic
                                        : transport::ProtocolMode::Eager;
  const auto objects = static_cast<std::size_t>(state.range(1));
  transport::NetStats stats{};
  for (auto _ : state) {
    stats = run_scenario(mode, objects, /*types=*/1, /*conformant=*/true);
    benchmark::DoNotOptimize(stats.bytes);
  }
  state.SetLabel(mode == transport::ProtocolMode::Optimistic ? "optimistic" : "eager");
  state.counters["objects"] = static_cast<double>(objects);
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
  state.counters["bytes_per_object"] =
      static_cast<double>(stats.bytes) / static_cast<double>(objects);
  state.counters["messages"] = static_cast<double>(stats.messages);
}
BENCHMARK(BM_Protocol)
    ->Args({0, 1})
    ->Args({0, 10})
    ->Args({0, 100})
    ->Args({1, 1})
    ->Args({1, 10})
    ->Args({1, 100});

/// Rejection path: the receiver's interests never conform. Optimistic pays
/// descriptions only; eager pays code for nothing, every time.
void BM_ProtocolRejection(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? transport::ProtocolMode::Optimistic
                                        : transport::ProtocolMode::Eager;
  transport::NetStats stats{};
  for (auto _ : state) {
    stats = run_scenario(mode, /*objects=*/20, /*types=*/1, /*conformant=*/false);
    benchmark::DoNotOptimize(stats.bytes);
  }
  state.SetLabel(mode == transport::ProtocolMode::Optimistic ? "optimistic" : "eager");
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
  state.counters["messages"] = static_cast<double>(stats.messages);
}
BENCHMARK(BM_ProtocolRejection)->Arg(0)->Arg(1);

/// Type-diversity sweep at fixed object count: more distinct types means
/// less reuse, shrinking the optimistic advantage.
void BM_ProtocolTypeDiversity(benchmark::State& state) {
  const auto types = static_cast<std::size_t>(state.range(1));
  const auto mode = state.range(0) == 0 ? transport::ProtocolMode::Optimistic
                                        : transport::ProtocolMode::Eager;
  transport::NetStats stats{};
  for (auto _ : state) {
    stats = run_scenario(mode, /*objects=*/60, types, /*conformant=*/true);
    benchmark::DoNotOptimize(stats.bytes);
  }
  state.SetLabel(mode == transport::ProtocolMode::Optimistic ? "optimistic" : "eager");
  state.counters["distinct_types"] = static_cast<double>(types);
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_ProtocolTypeDiversity)
    ->Args({0, 1})
    ->Args({0, 6})
    ->Args({0, 30})
    ->Args({1, 1})
    ->Args({1, 6})
    ->Args({1, 30});

}  // namespace

BENCHMARK_MAIN();
