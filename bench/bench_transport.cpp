// E5 — the optimistic transport protocol (paper Fig. 1).
//
// The paper's protocol is "optimistic in the sense that the code of the
// object as well as its type representation are not always sent with the
// object itself, but only when needed", saving network resources. The
// paper gives no table for this; we quantify the claim the figure makes:
//
//   * bytes on the wire and message counts, optimistic vs eager, as the
//     number of objects per type grows (reuse amortizes metadata/code);
//   * the rejection path: non-conformant pushes cost only descriptions,
//     never code;
//   * crossover: with one object per type, eager's single round trip can
//     rival optimistic's extra requests — reuse is what pays;
//   * concurrency: aggregate push throughput over the thread-pool-backed
//     AsyncTransport as application threads are added (each thread drives
//     its own sender->receiver pair of one shared universe), and the
//     pipelining headroom of send_async over one-at-a-time sync pushes.
#include <benchmark/benchmark.h>

#include <array>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/interop.hpp"
#include "serial/frame_codec.hpp"
#include "transport/async_transport.hpp"
#include "transport/socket_transport.hpp"

namespace {

using namespace pti;
using reflect::Value;

/// Runs `objects` pushes of `types` distinct wide types from one sender to
/// one subscriber; returns the network stats.
transport::NetStats run_scenario(transport::ProtocolMode mode, std::size_t objects,
                                 std::size_t types, bool conformant) {
  core::InteropSystem system;
  transport::PeerConfig config;
  config.mode = mode;
  core::InteropRuntime& sender = system.create_runtime("sender", config);
  core::InteropRuntime& receiver = system.create_runtime("receiver", config);

  for (std::size_t t = 0; t < types; ++t) {
    sender.publish_assembly(
        fixtures::wide_type("sns" + std::to_string(t), "Event" + std::to_string(t), 4, 4));
    // The receiver's interest types: same shape (conformant) or a
    // different-named, different-shaped type (non-conformant).
    receiver.publish_assembly(
        conformant
            ? fixtures::wide_type("rns" + std::to_string(t), "Event" + std::to_string(t),
                                  4, 4)
            : fixtures::wide_type("rns" + std::to_string(t), "Other" + std::to_string(t),
                                  3, 3));
    receiver.subscribe(
        "rns" + std::to_string(t) + "." +
            (conformant ? "Event" + std::to_string(t) : "Other" + std::to_string(t)),
        [](const transport::DeliveredObject&) {});
  }

  for (std::size_t i = 0; i < objects; ++i) {
    const std::string type_name =
        "sns" + std::to_string(i % types) + ".Event" + std::to_string(i % types);
    (void)sender.send("receiver", sender.make(type_name));
  }
  return system.network().stats();
}

void BM_Protocol(benchmark::State& state) {
  bench::paper_reference("E5 optimistic protocol (Fig. 1)",
                         "descriptions and code travel only on demand");
  const auto mode = state.range(0) == 0 ? transport::ProtocolMode::Optimistic
                                        : transport::ProtocolMode::Eager;
  const auto objects = static_cast<std::size_t>(state.range(1));
  transport::NetStats stats{};
  for (auto _ : state) {
    stats = run_scenario(mode, objects, /*types=*/1, /*conformant=*/true);
    benchmark::DoNotOptimize(stats.bytes);
  }
  state.SetLabel(mode == transport::ProtocolMode::Optimistic ? "optimistic" : "eager");
  state.counters["objects"] = static_cast<double>(objects);
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
  state.counters["bytes_per_object"] =
      static_cast<double>(stats.bytes) / static_cast<double>(objects);
  state.counters["messages"] = static_cast<double>(stats.messages);
}
BENCHMARK(BM_Protocol)
    ->Args({0, 1})
    ->Args({0, 10})
    ->Args({0, 100})
    ->Args({1, 1})
    ->Args({1, 10})
    ->Args({1, 100});

/// Rejection path: the receiver's interests never conform. Optimistic pays
/// descriptions only; eager pays code for nothing, every time.
void BM_ProtocolRejection(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? transport::ProtocolMode::Optimistic
                                        : transport::ProtocolMode::Eager;
  transport::NetStats stats{};
  for (auto _ : state) {
    stats = run_scenario(mode, /*objects=*/20, /*types=*/1, /*conformant=*/false);
    benchmark::DoNotOptimize(stats.bytes);
  }
  state.SetLabel(mode == transport::ProtocolMode::Optimistic ? "optimistic" : "eager");
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
  state.counters["messages"] = static_cast<double>(stats.messages);
}
BENCHMARK(BM_ProtocolRejection)->Arg(0)->Arg(1);

/// Type-diversity sweep at fixed object count: more distinct types means
/// less reuse, shrinking the optimistic advantage.
void BM_ProtocolTypeDiversity(benchmark::State& state) {
  const auto types = static_cast<std::size_t>(state.range(1));
  const auto mode = state.range(0) == 0 ? transport::ProtocolMode::Optimistic
                                        : transport::ProtocolMode::Eager;
  transport::NetStats stats{};
  for (auto _ : state) {
    stats = run_scenario(mode, /*objects=*/60, types, /*conformant=*/true);
    benchmark::DoNotOptimize(stats.bytes);
  }
  state.SetLabel(mode == transport::ProtocolMode::Optimistic ? "optimistic" : "eager");
  state.counters["distinct_types"] = static_cast<double>(types);
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_ProtocolTypeDiversity)
    ->Args({0, 1})
    ->Args({0, 6})
    ->Args({0, 30})
    ->Args({1, 1})
    ->Args({1, 6})
    ->Args({1, 30});

// --- concurrent pushes over AsyncTransport ------------------------------------

/// The shared warmed universe (definition in bench_common.hpp — the same
/// env backs bench_concurrent's BM_ConcurrentProtocolPush).
bench::ConcurrentPushEnv& async_env() {
  static bench::ConcurrentPushEnv e("a");
  return e;
}

/// Aggregate synchronous push throughput: thread i drives pair i — the
/// inbound protocol handling of distinct peers runs concurrently (shared
/// state underneath: symbol table, hub, atomic stats, virtual clock).
void BM_AsyncPushThroughput(benchmark::State& state) {
  bench::paper_reference("E5-conc: concurrent pushes over AsyncTransport",
                         "aggregate protocol throughput as peers are driven "
                         "from more application threads");
  bench::run_concurrent_push(state, async_env());
}
BENCHMARK(BM_AsyncPushThroughput)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

/// send_async pipelining: keep a window of in-flight pushes per thread
/// instead of one synchronous exchange at a time.
void BM_AsyncPushPipelined(benchmark::State& state) {
  bench::ConcurrentPushEnv& e = async_env();
  const int pair = state.thread_index() % bench::ConcurrentPushEnv::kPairs;
  core::InteropRuntime& sender = *e.senders[pair];
  const std::string& to = e.receiver_names[pair];
  const auto& object = e.objects[pair];
  constexpr int kWindow = 16;
  std::vector<std::future<transport::PushAck>> in_flight;
  in_flight.reserve(kWindow);
  for (auto _ : state) {
    for (int i = 0; i < kWindow; ++i) {
      in_flight.push_back(sender.send_async(to, object));
    }
    for (auto& f : in_flight) benchmark::DoNotOptimize(f.get());
    in_flight.clear();
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_AsyncPushPipelined)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

// --- the real wire: FrameCodec + SocketTransport ------------------------------

/// Frame encode+decode cost for a representative ObjectPush (the dominant
/// protocol message): the pure serialization tax of the socket path.
void BM_FrameCodecRoundTrip(benchmark::State& state) {
  bench::paper_reference("wire: FrameCodec + loopback sockets",
                         "the serialized path the paper's protocol takes "
                         "between real peers");
  const serial::FrameCodec codec;
  transport::ObjectPush push;
  push.envelope.assign(static_cast<std::size_t>(state.range(0)), 0x5A);
  const transport::Message message{"sender", "receiver", std::move(push)};
  std::size_t frame_bytes = 0;
  for (auto _ : state) {
    const auto frame = codec.encode(message);
    frame_bytes = frame.size();
    benchmark::DoNotOptimize(codec.decode(frame));
  }
  state.counters["frame_bytes"] = static_cast<double>(frame_bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * frame_bytes));
}
BENCHMARK(BM_FrameCodecRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

/// One minimal framed exchange over loopback TCP (request out, response
/// back through a pooled connection): the wire's round-trip floor, before
/// any protocol work sits on top.
void BM_SocketRawExchange(benchmark::State& state) {
  transport::SocketTransport net;
  net.attach("echo", [](const transport::Message& request) {
    transport::Message response;
    response.payload = transport::PushAck{true, ""};
    transport::address_response(request, response);
    return response;
  });
  const transport::Message ping{"caller", "echo", transport::PushAck{true, "ping"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.send(ping));
  }
  state.SetItemsProcessed(state.iterations());
  net.detach("echo");
}
BENCHMARK(BM_SocketRawExchange);

/// The shared warmed universe over SocketTransport: every push (and every
/// nested protocol round trip) is framed bytes on loopback TCP.
bench::ConcurrentPushEnv& socket_env() {
  static bench::ConcurrentPushEnv e("sk",
                                    std::make_unique<transport::SocketTransport>());
  return e;
}

/// Full-protocol push throughput over real sockets — the socket-path twin
/// of BM_AsyncPushThroughput (same warmed pairs, same conformance work;
/// the delta is serialization + kernel round trips).
void BM_SocketPushThroughput(benchmark::State& state) {
  bench::run_concurrent_push(state, socket_env());
}
BENCHMARK(BM_SocketPushThroughput)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

/// Generous budgets: every admission dimension armed, none ever tripped
/// during a bench run (the token bucket's burst depth is 1 TiB), so the
/// benches below measure the pure per-exchange governance tax.
transport::PeerQuotaConfig generous_quotas() {
  return transport::PeerQuotaConfig{.bytes_per_sec = 1,
                                    .burst_bytes = 1ULL << 40,
                                    .max_inflight = 64,
                                    .max_frame_bytes = 1ULL << 20,
                                    .max_new_names = 1ULL << 20};
}

/// Quota-overhead twin of BM_SocketRawExchange: the same minimal framed
/// exchange with per-peer admission (frame cap, token bucket, inflight
/// slot, name budget) on the serve path — the delta between the two is
/// the wire-floor cost of resource governance.
void BM_SocketRawExchangeQuota(benchmark::State& state) {
  transport::SocketTransport net;
  net.peer_quotas()->set_default(generous_quotas());
  net.attach("echo", [](const transport::Message& request) {
    transport::Message response;
    response.payload = transport::PushAck{true, ""};
    transport::address_response(request, response);
    return response;
  });
  const transport::Message ping{"caller", "echo", transport::PushAck{true, "ping"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.send(ping));
  }
  state.SetItemsProcessed(state.iterations());
  net.detach("echo");
}
BENCHMARK(BM_SocketRawExchangeQuota);

/// The warmed socket universe with quotas armed on every exchange.
bench::ConcurrentPushEnv& socket_quota_env() {
  static bench::ConcurrentPushEnv& env = []() -> bench::ConcurrentPushEnv& {
    static bench::ConcurrentPushEnv e("sq",
                                      std::make_unique<transport::SocketTransport>());
    e.system.network().peer_quotas()->set_default(generous_quotas());
    return e;
  }();
  return env;
}

/// Full-protocol push throughput with admission checks live — the
/// acceptance gate for the governance work is this staying within 5% of
/// BM_SocketPushThroughput.
void BM_SocketPushThroughputQuota(benchmark::State& state) {
  bench::run_concurrent_push(state, socket_quota_env());
}
BENCHMARK(BM_SocketPushThroughputQuota)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// --- the session layer: one-exchange warmed pushes ----------------------------

/// The warmed universe over SocketTransport with the session layer on:
/// after the constructor's warm-up push every pair holds a live session
/// (wire ids mapped, verdict cached), so each measured push is exactly
/// one framed exchange — no ObjectPush envelope, no nested round trips.
bench::ConcurrentPushEnv& socket_session_env() {
  static bench::ConcurrentPushEnv e("ss",
                                    std::make_unique<transport::SocketTransport>(),
                                    transport::PeerConfig{.use_sessions = true});
  return e;
}

/// Session-layer twin of BM_SocketPushThroughput: same warmed pairs, same
/// socket wire — the delta is the session protocol collapsing each push
/// to a single request/ack pair with a raw payload and a cached verdict.
void BM_SocketPushThroughputSession(benchmark::State& state) {
  bench::paper_reference("session layer: one-exchange warmed push",
                         "warmed pushes ride an established session: wire ids "
                         "+ raw payload + cached verdict, one framed exchange");
  bench::run_concurrent_push(state, socket_session_env());
}
BENCHMARK(BM_SocketPushThroughputSession)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// Session push with the binary payload serializer: the session layer
/// removed the protocol round trips; this row removes the SOAP XML
/// serialize/parse tax too, leaving framing + kernel + conformance-cache
/// lookup — the warmed wire's practical ceiling.
bench::ConcurrentPushEnv& socket_session_binary_env() {
  static bench::ConcurrentPushEnv e(
      "sb", std::make_unique<transport::SocketTransport>(),
      transport::PeerConfig{.payload_encoding = "binary", .use_sessions = true});
  return e;
}

void BM_SocketPushThroughputSessionBinary(benchmark::State& state) {
  bench::run_concurrent_push(state, socket_session_binary_env());
}
BENCHMARK(BM_SocketPushThroughputSessionBinary)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// The async-transport twin (in-process handoff instead of loopback TCP):
/// isolates the session layer's protocol savings from the kernel's.
bench::ConcurrentPushEnv& async_session_env() {
  static bench::ConcurrentPushEnv e("as", nullptr,
                                    transport::PeerConfig{.use_sessions = true});
  return e;
}

void BM_AsyncPushThroughputSession(benchmark::State& state) {
  bench::run_concurrent_push(state, async_session_env());
}
BENCHMARK(BM_AsyncPushThroughputSession)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// Batched warmed sessions over sockets with binary payloads: the sender
/// queues a full batching window of async pushes, which crosses the wire
/// as ONE SessionBatch frame with per-entry verdicts in one ack — the
/// framed-exchange and kernel round-trip cost amortises across the window
/// on top of everything the binary session row already removed.
transport::PeerConfig batched_session_config() {
  transport::PeerConfig config{.payload_encoding = "binary", .use_sessions = true};
  config.session.max_batch = 16;
  return config;
}

bench::ConcurrentPushEnv& socket_session_batched_env() {
  static bench::ConcurrentPushEnv e("bb", std::make_unique<transport::SocketTransport>(),
                                    batched_session_config());
  return e;
}

void BM_SocketPushThroughputSessionBatched(benchmark::State& state) {
  bench::paper_reference("session layer: batched warmed pushes",
                         "a full batching window (16 pushes) travels as one "
                         "SessionBatch frame with one per-entry ack");
  bench::ConcurrentPushEnv& e = socket_session_batched_env();
  const int pair = state.thread_index() % bench::ConcurrentPushEnv::kPairs;
  core::InteropRuntime& sender = *e.senders[pair];
  const std::string& to = e.receiver_names[pair];
  const auto& object = e.objects[pair];
  constexpr int kWindow = 16;  // == max_batch: every loop flushes exactly one frame
  std::vector<std::future<transport::PushAck>> in_flight;
  in_flight.reserve(kWindow);
  for (auto _ : state) {
    for (int i = 0; i < kWindow; ++i) {
      in_flight.push_back(sender.send_async(to, object));
    }
    for (auto& f : in_flight) benchmark::DoNotOptimize(f.get());
    in_flight.clear();
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_SocketPushThroughputSessionBatched)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// send_async pipelining over sockets: a window of in-flight pushes per
/// thread served by the outbound worker pool.
void BM_SocketPushPipelined(benchmark::State& state) {
  bench::ConcurrentPushEnv& e = socket_env();
  const int pair = state.thread_index() % bench::ConcurrentPushEnv::kPairs;
  core::InteropRuntime& sender = *e.senders[pair];
  const std::string& to = e.receiver_names[pair];
  const auto& object = e.objects[pair];
  constexpr int kWindow = 16;
  std::vector<std::future<transport::PushAck>> in_flight;
  in_flight.reserve(kWindow);
  for (auto _ : state) {
    for (int i = 0; i < kWindow; ++i) {
      in_flight.push_back(sender.send_async(to, object));
    }
    for (auto& f : in_flight) benchmark::DoNotOptimize(f.get());
    in_flight.clear();
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_SocketPushPipelined)->Threads(1)->Threads(2)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
