// E-scale — population-scale matching and the megasim (ISSUE 8).
//
// The paper ran two hosts; the claim that matters at population scale is
// architectural: interest matching must not degrade linearly in the number
// of PEERS when only a handful of TYPES are relevant to a publish. These
// benches quantify that:
//
//   * IndexFanout vs PerPeerScanFanout — one publish's target discovery
//     through the shared transport::InterestIndex (scan DISTINCT interests,
//     walk matching posting lists) against the pre-index baseline (visit
//     every subscriber's own interest list). Same subscriber population,
//     same accept set, identical output; the index must win from ~10^4
//     subscribers up, and the gap must widen at 10^5.
//   * IndexSubscribeChurn — steady-state cost of one join/leave cycle
//     (subscriber slot, two COW interest registrations, posting-list
//     append/tombstone, epoch retire) on an already-populated index.
//   * ScenarioPublishStorm — whole-megasim cost per delivered push
//     (population bring-up included), optimistic vs eager, with the wire
//     bytes each mode moved as counters — the paper's savings claim read
//     at 10^3..10^4 peers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/scenario.hpp"
#include "transport/interest_index.hpp"
#include "util/epoch.hpp"
#include "util/interning.hpp"
#include "util/rng.hpp"

namespace {

using pti::sim::ScenarioConfig;
using pti::sim::ScenarioResult;
using pti::sim::ScenarioScript;
using pti::transport::InterestEntry;
using pti::transport::InterestIndex;
using pti::transport::SubscriberId;
using pti::util::InternedName;

constexpr std::size_t kFamilies = 64;
constexpr std::size_t kGroups = 16;
constexpr std::size_t kInterestsPerSub = 2;

const std::vector<InternedName>& family_names() {
  static const std::vector<InternedName> names = [] {
    std::vector<InternedName> out;
    out.reserve(kFamilies);
    for (std::size_t i = 0; i < kFamilies; ++i) {
      out.push_back(pti::util::SymbolTable::global().intern("scalebench.F" +
                                                            std::to_string(i)));
    }
    return out;
  }();
  return names;
}

/// Draws the same interest assignment the scan baseline uses, so both
/// benches discover identical target sets. The interest's family index
/// doubles as its fingerprint (the group probe both paths share).
std::vector<std::vector<std::uint32_t>> subscriber_families(std::size_t subs) {
  pti::util::Rng rng(99);
  std::vector<std::vector<std::uint32_t>> families(subs);
  for (std::size_t s = 0; s < subs; ++s) {
    for (std::size_t k = 0; k < kInterestsPerSub; ++k) {
      const auto family = static_cast<std::uint32_t>(rng.next_below(kFamilies));
      auto& mine = families[s];
      if (std::find(mine.begin(), mine.end(), family) == mine.end()) {
        mine.push_back(family);
      }
    }
  }
  return families;
}

void BM_IndexFanout(benchmark::State& state) {
  pti::bench::paper_reference(
      "E-scale/index", "target discovery per publish; distinct-interest scan + "
                       "posting walk, independent of population size");
  const auto subs = static_cast<std::size_t>(state.range(0));
  const auto assignment = subscriber_families(subs);
  InterestIndex index;
  for (std::size_t s = 0; s < subs; ++s) {
    const SubscriberId sub = index.add_subscriber();
    for (const std::uint32_t family : assignment[s]) {
      index.add_interest(sub, family_names()[family], family);
    }
  }

  std::vector<SubscriberId> out;
  std::vector<InternedName> scratch;
  std::uint64_t published = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const std::uint64_t group = published++ % kGroups;
    index.collect_matches(
        [group](const InterestEntry& entry) { return entry.fingerprint % kGroups == group; },
        out, scratch);
    matched = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["subs"] = static_cast<double>(subs);
  state.counters["targets"] = static_cast<double>(matched);
}
BENCHMARK(BM_IndexFanout)->Arg(1000)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_PerPeerScanFanout(benchmark::State& state) {
  pti::bench::paper_reference(
      "E-scale/scan", "pre-index baseline: every subscriber's own interest "
                      "list visited per publish — O(population)");
  const auto subs = static_cast<std::size_t>(state.range(0));
  const auto assignment = subscriber_families(subs);

  std::vector<SubscriberId> out;
  std::uint64_t published = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const std::uint64_t group = published++ % kGroups;
    out.clear();
    for (std::size_t s = 0; s < subs; ++s) {
      for (const std::uint32_t family : assignment[s]) {
        if (family % kGroups == group) {
          out.push_back(static_cast<SubscriberId>(s));
          break;
        }
      }
    }
    std::sort(out.begin(), out.end());
    matched = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["subs"] = static_cast<double>(subs);
  state.counters["targets"] = static_cast<double>(matched);
}
BENCHMARK(BM_PerPeerScanFanout)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_IndexSubscribeChurn(benchmark::State& state) {
  pti::bench::paper_reference(
      "E-scale/churn", "join+leave cycle against a populated index: slot "
                       "reuse, COW registration, tombstone, epoch retire");
  const auto subs = static_cast<std::size_t>(state.range(0));
  const auto assignment = subscriber_families(subs);
  InterestIndex index;
  for (std::size_t s = 0; s < subs; ++s) {
    const SubscriberId sub = index.add_subscriber();
    for (const std::uint32_t family : assignment[s]) {
      index.add_interest(sub, family_names()[family], family);
    }
  }

  std::uint64_t cycle = 0;
  for (auto _ : state) {
    const SubscriberId sub = index.add_subscriber();
    index.add_interest(sub, family_names()[cycle % kFamilies], cycle % kFamilies);
    index.add_interest(sub, family_names()[(cycle + 7) % kFamilies],
                       (cycle + 7) % kFamilies);
    index.remove_subscriber(sub);
    if (++cycle % 4096 == 0) index.epochs().try_reclaim();
  }
  index.epochs().try_reclaim();
  state.counters["subs"] = static_cast<double>(subs);
}
BENCHMARK(BM_IndexSubscribeChurn)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_ScenarioPublishStorm(benchmark::State& state) {
  pti::bench::paper_reference(
      "E-scale/storm", "full megasim publish storm (bring-up included); "
                       "optimistic vs eager wire bytes at population scale");
  const auto peers = static_cast<std::size_t>(state.range(0));
  const bool eager = state.range(1) == 1;
  const bool sessions = state.range(1) >= 2;  // session-layer optimistic
  const bool batched = state.range(1) == 3;   // + batching window, shared intros
  ScenarioConfig config;
  config.seed = 42;
  config.peers = peers;
  config.types = kFamilies;
  config.type_groups = kGroups;
  config.mode = eager ? pti::transport::ProtocolMode::Eager
                      : pti::transport::ProtocolMode::Optimistic;
  config.use_sessions = sessions;
  if (batched) config.session_batch = 16;
  ScenarioScript script;
  script.publish_storm(peers / 10);

  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    const ScenarioResult result = pti::sim::run_scenario(config, script);
    deliveries += result.stats.deliveries;
    state.counters["net_bytes"] = static_cast<double>(result.stats.net_bytes);
    state.counters["net_msgs"] = static_cast<double>(result.stats.net_messages);
    state.counters["accepts"] = static_cast<double>(result.stats.accepts);
    state.counters["rejects"] = static_cast<double>(result.stats.rejects);
    benchmark::DoNotOptimize(result.trace_digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
  state.SetLabel(eager ? "eager"
                       : (batched ? "session-batched"
                                  : (sessions ? "session" : "optimistic")));
}
BENCHMARK(BM_ScenarioPublishStorm)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Args({4000, 2})
    ->Args({16000, 0})
    ->Args({16000, 2})
    ->Args({16000, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
