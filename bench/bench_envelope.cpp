// E6 — the hybrid serialization scheme (paper Fig. 3).
//
// An object travels as an XML message combining type information (names,
// identities, assembly download paths) with a SOAP- or binary-serialized
// payload. Fig. 3 is architectural; we quantify what it implies:
//
//   * wrapper overhead (XML header bytes) vs payload bytes per encoding;
//   * envelope build and parse cost;
//   * how the wrapper amortizes as the payload grows (the wrapper is per
//     message; type info is per distinct type, not per object).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "serial/envelope.hpp"
#include "serial/object_serializer.hpp"

namespace {

using namespace pti;
using reflect::Value;

void BM_EnvelopeBuild(benchmark::State& state) {
  bench::paper_reference("E6 hybrid envelope (Fig. 3)",
                         "XML wrapper (type info + download paths) around SOAP/binary payload");
  static const char* encodings[] = {"soap", "binary", "xml"};
  const char* encoding = encodings[state.range(0)];

  reflect::Domain domain;
  bench::load_people(domain);
  serial::SerializerRegistry registry = serial::SerializerRegistry::with_defaults();
  serial::EnvelopeBuilder builder(registry.get(encoding), &domain.registry());
  auto person = bench::make_person_a(domain);

  serial::Envelope envelope;
  for (auto _ : state) {
    envelope = builder.build(Value(person));
    benchmark::DoNotOptimize(envelope);
  }
  state.SetLabel(encoding);
  state.counters["payload_bytes"] = static_cast<double>(envelope.payload.size());
  state.counters["wrapper_bytes"] = static_cast<double>(envelope.wrapper_size());
  state.counters["message_bytes"] = static_cast<double>(envelope.to_bytes().size());
}
BENCHMARK(BM_EnvelopeBuild)->Arg(0)->Arg(1)->Arg(2);

void BM_EnvelopeParse(benchmark::State& state) {
  static const char* encodings[] = {"soap", "binary", "xml"};
  const char* encoding = encodings[state.range(0)];

  reflect::Domain domain;
  bench::load_people(domain);
  serial::SerializerRegistry registry = serial::SerializerRegistry::with_defaults();
  serial::EnvelopeBuilder builder(registry.get(encoding), &domain.registry());
  const auto bytes = builder.build(Value(bench::make_person_a(domain))).to_bytes();

  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::Envelope::from_bytes(bytes));
  }
  state.SetLabel(encoding);
  state.counters["message_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_EnvelopeParse)->Arg(0)->Arg(1)->Arg(2);

/// Wrapper amortization: one envelope around graphs of growing size. The
/// type-info section stays constant (two types), the payload grows.
void BM_EnvelopeAmortization(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  serial::SerializerRegistry registry = serial::SerializerRegistry::with_defaults();
  serial::EnvelopeBuilder builder(registry.get("binary"), &domain.registry());

  const auto count = static_cast<std::size_t>(state.range(0));
  Value::List people;
  for (std::size_t i = 0; i < count; ++i) {
    people.push_back(Value(bench::make_person_a(domain, "P" + std::to_string(i))));
  }
  const Value root(std::move(people));

  serial::Envelope envelope;
  for (auto _ : state) {
    envelope = builder.build(root);
    benchmark::DoNotOptimize(envelope);
  }
  const double wrapper = static_cast<double>(envelope.wrapper_size());
  const double payload = static_cast<double>(envelope.payload.size());
  state.counters["objects"] = static_cast<double>(count);
  state.counters["wrapper_bytes"] = wrapper;
  state.counters["payload_bytes"] = payload;
  state.counters["wrapper_share_pct"] = 100.0 * wrapper / (wrapper + payload);
}
BENCHMARK(BM_EnvelopeAmortization)->Arg(1)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
