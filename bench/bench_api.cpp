// API — the end-to-end cost of the v2 handle-based public surface.
//
// PR 1/2 made the library-level hot paths (checker + cache) allocation-
// free; this bench verifies the *public API* keeps those properties: a
// steady-state caller holding TypeHandles must pay no string hashing, no
// case folding and no heap allocations for cached conformance queries and
// handler dispatch, and only the unavoidable object construction for
// make/adapt. The acceptance bar (ISSUE 3): handle-based cached
// check_conformance ≤ the PR-2 cached checker cost, and dispatch at 0
// allocs per delivered object.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "bench_common.hpp"
#include "core/interop.hpp"

// --- global allocation counter ----------------------------------------------
// Counts every operator new in the process so benchmarks can report
// allocations per iteration; the acceptance bar for the cached verdict and
// dispatch paths is exactly zero.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace pti;
using core::InteropRuntime;
using core::InteropSystem;
using core::TypeHandle;
using reflect::Value;

/// Runs the benchmark loop while tracking operator-new calls and reports
/// them as the "allocs_per_iter" counter.
template <typename Body>
void measure_allocs(benchmark::State& state, Body&& body) {
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) body();
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  state.counters["allocs_per_iter"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(after - before) / static_cast<double>(state.iterations());
}

/// One runtime with both teams' types loaded — the steady-state picture of
/// a peer after the optimistic protocol has run.
struct Fixture {
  Fixture() : runtime(system.create_runtime("alice")) {
    runtime.publish_assembly(fixtures::team_a_people());
    runtime.publish_assembly(fixtures::team_b_people());
    person_a = runtime.type("teamA.Person");
    person_b = runtime.type("teamB.Person");
    named_a = runtime.type("teamA.INamed");
  }

  InteropSystem system;
  InteropRuntime& runtime;
  TypeHandle person_a;
  TypeHandle person_b;
  TypeHandle named_a;
};

/// The name→handle resolution a caller pays exactly once.
void BM_ApiTypeResolve(benchmark::State& state) {
  bench::paper_reference("API v2 (ISSUE 3)",
                         "handle-based public API must keep the PR-2 cached-check "
                         "cost (~34 ns, 0 allocs) through core::InteropRuntime");
  Fixture f;
  measure_allocs(state,
                 [&] { benchmark::DoNotOptimize(f.runtime.type("teamB.Person")); });
}
BENCHMARK(BM_ApiTypeResolve);

/// Cached full check through the public API, by handle. The acceptance
/// bar: no slower than the checker-level cached check() of PR 2.
void BM_ApiCheckConformanceCachedHandle(benchmark::State& state) {
  Fixture f;
  (void)f.runtime.check_conformance(f.person_b, f.person_a);  // warm
  measure_allocs(state, [&] {
    benchmark::DoNotOptimize(f.runtime.check_conformance(f.person_b, f.person_a));
  });
}
BENCHMARK(BM_ApiCheckConformanceCachedHandle);

/// The same query through the v1 string API — what the handle redesign
/// saves (two registry resolutions per call).
void BM_ApiCheckConformanceCachedString(benchmark::State& state) {
  Fixture f;
  (void)f.runtime.check_conformance("teamB.Person", "teamA.Person");  // warm
  measure_allocs(state, [&] {
    benchmark::DoNotOptimize(
        f.runtime.check_conformance("teamB.Person", "teamA.Person"));
  });
}
BENCHMARK(BM_ApiCheckConformanceCachedString);

/// Verdict-only hit path through the public API: must be 0 allocs.
void BM_ApiConformsCachedHandle(benchmark::State& state) {
  Fixture f;
  (void)f.runtime.check_conformance(f.person_b, f.person_a);  // warm
  measure_allocs(state, [&] {
    benchmark::DoNotOptimize(f.runtime.conforms(f.person_b, f.person_a));
  });
}
BENCHMARK(BM_ApiConformsCachedHandle);

/// Reference point: the same cached check at the checker level (the PR-2
/// number the API path is measured against).
void BM_CheckerCheckCachedReference(benchmark::State& state) {
  Fixture f;
  const auto& source = f.person_b.description();
  const auto& target = f.person_a.description();
  (void)f.runtime.checker().check(source, target);  // warm
  measure_allocs(state, [&] {
    benchmark::DoNotOptimize(f.runtime.checker().check(source, target));
  });
}
BENCHMARK(BM_CheckerCheckCachedReference);

/// Batched verdicts over many warmed pairs: the shard-aware batch probe
/// amortizes cache traffic; per-pair cost should sit at or below the
/// single conforms() hit. Zero allocations (caller-owned output span).
void BM_ApiCheckConformanceBatch(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Fixture f;
  f.runtime.domain().load_assembly(fixtures::deep_type_chain("da", depth));
  f.runtime.domain().load_assembly(fixtures::deep_type_chain("db", depth));
  std::vector<InteropRuntime::HandlePair> pairs;
  for (std::size_t i = 0; i < depth; ++i) {
    const std::string level = "T" + std::to_string(i);
    pairs.emplace_back(f.runtime.type("db." + level), f.runtime.type("da." + level));
  }
  // Warm every pair, then measure the batch.
  std::vector<bool> warm = f.runtime.check_conformance(pairs);
  benchmark::DoNotOptimize(warm);
  const std::unique_ptr<bool[]> storage(new bool[pairs.size()]());
  const std::span<bool> verdicts(storage.get(), pairs.size());
  measure_allocs(state, [&] {
    f.runtime.check_conformance(std::span<const InteropRuntime::HandlePair>(pairs),
                                verdicts);
    benchmark::DoNotOptimize(verdicts.data());
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs.size()));
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_ApiCheckConformanceBatch)->Arg(16)->Arg(64);

/// make() by handle vs by string: the object construction dominates; the
/// handle path sheds the registry probe and name re-hash.
void BM_ApiMakeHandle(benchmark::State& state) {
  Fixture f;
  const Value args[] = {Value("Ada")};
  measure_allocs(state,
                 [&] { benchmark::DoNotOptimize(f.runtime.make(f.person_a, args)); });
}
BENCHMARK(BM_ApiMakeHandle);

void BM_ApiMakeString(benchmark::State& state) {
  Fixture f;
  const Value args[] = {Value("Ada")};
  measure_allocs(state,
                 [&] { benchmark::DoNotOptimize(f.runtime.make("teamA.Person", args)); });
}
BENCHMARK(BM_ApiMakeString);

/// adapt() on a warmed plan: proxy wrap through the cached conformance
/// plan (COW — no deep copy).
void BM_ApiAdaptCachedHandle(benchmark::State& state) {
  Fixture f;
  const Value args[] = {Value("Ada")};
  auto person = f.runtime.make(f.person_a, args);
  (void)f.runtime.adapt(person, f.person_b);  // warm plan
  measure_allocs(state, [&] {
    benchmark::DoNotOptimize(f.runtime.adapt(person, f.person_b));
  });
}
BENCHMARK(BM_ApiAdaptCachedHandle);

/// try_ channel overhead on the cached check path: Expected<CheckResult>
/// wraps the same computation.
void BM_ApiTryCheckConformanceCached(benchmark::State& state) {
  Fixture f;
  (void)f.runtime.check_conformance(f.person_b, f.person_a);  // warm
  measure_allocs(state, [&] {
    benchmark::DoNotOptimize(f.runtime.try_check_conformance(f.person_b, f.person_a));
  });
}
BENCHMARK(BM_ApiTryCheckConformanceCached);

/// Handler dispatch on the interned interest id: the per-delivery fan-out
/// must be allocation-free (ISSUE 3 satellite). Drives dispatch()
/// directly with a prebuilt DeliveredObject, exactly what the protocol
/// hands over after deserialization.
void BM_ApiDispatch(benchmark::State& state) {
  const auto handlers = static_cast<std::size_t>(state.range(0));
  Fixture f;
  std::uint64_t delivered_count = 0;
  std::vector<core::Subscription> subs;
  subs.reserve(handlers);
  for (std::size_t i = 0; i < handlers; ++i) {
    subs.push_back(
        f.runtime.subscribe(f.person_b, [&](const auto&) { ++delivered_count; }));
  }
  const Value args[] = {Value("Ada")};
  transport::DeliveredObject delivered;
  delivered.object = f.runtime.make(f.person_a, args);
  delivered.adapted = f.runtime.adapt(delivered.object, f.person_b);
  delivered.interest_type = "teamB.Person";
  delivered.interest_id = f.person_b.id();
  delivered.sender = "bench";
  measure_allocs(state, [&] { f.runtime.dispatch(delivered); });
  benchmark::DoNotOptimize(delivered_count);
  state.counters["handlers"] = static_cast<double>(handlers);
}
BENCHMARK(BM_ApiDispatch)->Arg(1)->Arg(4)->Arg(16);

/// The full pass-by-value exchange through the public API (send + match +
/// deserialize + dispatch) — the end-to-end context for the numbers above.
void BM_ApiSendDeliver(benchmark::State& state) {
  InteropSystem system;
  auto& alice = system.create_runtime("alice");
  auto& bob = system.create_runtime("bob");
  alice.publish_assembly(fixtures::team_a_people());
  bob.publish_assembly(fixtures::team_b_people());
  auto sub = bob.subscribe(bob.type("teamB.Person"), [](const auto&) {});
  const Value args[] = {Value("Ada")};
  auto person = alice.make(alice.type("teamA.Person"), args);
  (void)alice.send("bob", person);  // warm: descriptions + code downloaded
  for (auto _ : state) {
    benchmark::DoNotOptimize(alice.send("bob", person));
  }
}
BENCHMARK(BM_ApiSendDeliver);

}  // namespace

BENCHMARK_MAIN();
