// E4 — conformance testing (paper §7.4).
//
// The paper verifies implicit structural conformance 100 x 1000 times on
// "very simple types" and reports ~12.66 ms / 1000 (≈12.7 us per check),
// calling it "in some sense, a lower bound" for real types. It also
// argues (implicitly) that the check dwarfs proxy invocation overhead.
//
// We measure: the Person pair uncached and cached, a non-conformant pair
// (early rejection), the baseline matchers, cache-hit throughput and
// per-lookup heap allocations (the interned-identity layer makes the
// verdict-only hit path allocation-free), and width/depth sweeps showing
// how the "lower bound" grows with type size.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "conform/baselines.hpp"
#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"

// --- global allocation counter ----------------------------------------------
// Counts every operator new in the process so benchmarks can report
// allocations per iteration; the acceptance bar for the cache-hit verdict
// path is exactly zero.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace pti;
using conform::ConformanceChecker;

/// Runs the benchmark loop while tracking operator-new calls and reports
/// them as the "allocs_per_iter" counter.
template <typename Body>
void measure_allocs(benchmark::State& state, Body&& body) {
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) body();
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  state.counters["allocs_per_iter"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(after - before) / static_cast<double>(state.iterations());
}

void BM_ImplicitCheckUncached(benchmark::State& state) {
  bench::paper_reference("E4 conformance testing (§7.4)",
                         "~12.66 us per implicit structural check on simple types");
  reflect::Domain domain;
  bench::load_people(domain);
  ConformanceChecker checker(domain.registry());  // no cache: full rule every time
  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
}
BENCHMARK(BM_ImplicitCheckUncached);

void BM_ImplicitCheckCached(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  conform::ConformanceCache cache;
  ConformanceChecker checker(domain.registry(), {}, &cache);
  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");
  (void)checker.check(source, target);  // warm
  measure_allocs(state, [&] { benchmark::DoNotOptimize(checker.check(source, target)); });
  state.counters["cache_hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_ImplicitCheckCached);

/// The verdict-only hit path: conforms() answers from the interned-key
/// cache without materializing a CheckResult. This is the path a busy peer
/// takes on every repeat (source, target) pair; allocs_per_iter must be 0.
void BM_CachedVerdictOnly(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  conform::ConformanceCache cache;
  ConformanceChecker checker(domain.registry(), {}, &cache);
  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");
  (void)checker.check(source, target);  // warm
  measure_allocs(state, [&] { benchmark::DoNotOptimize(checker.conforms(source, target)); });
  state.counters["cache_hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CachedVerdictOnly);

/// Cache-hit throughput across many distinct warmed pairs (not just one
/// hot key): cycles through the pairs of a deep reference chain, all of
/// which were cached by the single warming check.
void BM_CacheHitManyPairs(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  reflect::Domain domain;
  domain.load_assembly(fixtures::deep_type_chain("da", depth));
  domain.load_assembly(fixtures::deep_type_chain("db", depth));
  conform::ConformanceCache cache;
  ConformanceChecker checker(domain.registry(), {}, &cache);
  (void)checker.check(*domain.registry().find("db.T0"),
                      *domain.registry().find("da.T0"));  // warms every level
  std::vector<std::pair<const reflect::TypeDescription*, const reflect::TypeDescription*>>
      pairs;
  for (std::size_t i = 0; i < depth; ++i) {
    const std::string level = "T" + std::to_string(i);
    pairs.emplace_back(domain.registry().find("db." + level),
                       domain.registry().find("da." + level));
  }
  std::size_t next = 0;
  measure_allocs(state, [&] {
    const auto& [source, target] = pairs[next];
    benchmark::DoNotOptimize(checker.conforms(*source, *target));
    next = (next + 1) % pairs.size();
  });
  state.counters["distinct_pairs"] = static_cast<double>(pairs.size());
  state.counters["cache_hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheHitManyPairs)->Arg(16)->Arg(64);

void BM_NonConformantEarlyReject(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  domain.load_assembly(fixtures::bank_accounts());
  ConformanceChecker checker(domain.registry());
  const auto& source = *domain.registry().find("bank.Account");
  const auto& target = *domain.registry().find("teamA.Person");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));  // fails on name
  }
}
BENCHMARK(BM_NonConformantEarlyReject);

void BM_BaselineMatchers(benchmark::State& state) {
  reflect::Domain domain;
  bench::load_people(domain);
  domain.load_assembly(fixtures::tagged_a());
  domain.load_assembly(fixtures::tagged_b());

  conform::ExactMatcher exact;
  conform::NominalMatcher nominal(domain.registry());
  conform::TaggedStructuralMatcher tagged(domain.registry());
  conform::ImplicitStructuralMatcher implicit(domain.registry());
  conform::Matcher* matchers[] = {&exact, &nominal, &tagged, &implicit};
  conform::Matcher& matcher = *matchers[state.range(0)];

  const auto& src_person = *domain.registry().find("teamB.Person");
  const auto& tgt_person = *domain.registry().find("teamA.Person");
  const auto& src_point = *domain.registry().find("taggedB.Point");
  const auto& tgt_point = *domain.registry().find("taggedA.Point");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.matches(src_person, tgt_person));
    benchmark::DoNotOptimize(matcher.matches(src_point, tgt_point));
  }
  state.SetLabel(std::string(matcher.name()));
}
BENCHMARK(BM_BaselineMatchers)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

/// The "lower bound" grows with type width (members to match is O(n^2) in
/// the worst case).
void BM_CheckWidthSweep(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  reflect::Domain domain;
  domain.load_assembly(fixtures::wide_type("wa", "Widget", width, width));
  domain.load_assembly(fixtures::wide_type("wb", "Gadget", width, width));
  // Same shape but different type names: rename Gadget's description into a
  // Widget-named twin would short-circuit as equivalent, so instead check
  // Gadget -> Widget with a relaxed type-name budget, forcing the full
  // member-by-member walk.
  conform::ConformanceOptions options;
  options.max_name_distance = 6;  // "Widget" vs "Gadget"
  ConformanceChecker checker(domain.registry(), options);
  const auto& source = *domain.registry().find("wb.Gadget");
  const auto& target = *domain.registry().find("wa.Widget");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
  state.counters["members"] = static_cast<double>(2 * width);
}
BENCHMARK(BM_CheckWidthSweep)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Depth sweep over recursive reference chains.
void BM_CheckDepthSweep(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  reflect::Domain domain;
  domain.load_assembly(fixtures::deep_type_chain("da", depth));
  domain.load_assembly(fixtures::deep_type_chain("db", depth));
  ConformanceChecker checker(domain.registry());
  const auto& source = *domain.registry().find("db.T0");
  const auto& target = *domain.registry().find("da.T0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_CheckDepthSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
