// E7 — ablation of the conformance-rule design choices (paper §4.2).
//
// The paper discusses several knobs without measuring them: argument
// permutations (Fig. 2's Perm), the "weaker rule" that only checks names
// (rejected as unsafe), wildcard names, and the implicit cost of checking
// every aspect. This bench quantifies each choice's cost so the trade-offs
// behind the paper's rules are visible:
//
//   * permutations on/off on a permuted pair (what Perm costs);
//   * member-name rules: exact vs contains vs token-subset;
//   * aspect toggles: full rule vs name-only ("weaker") vs no-supertypes;
//   * conformance cache on/off in a realistic mixed workload.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"

namespace {

using namespace pti;
using conform::ConformanceChecker;
using conform::ConformanceOptions;
using conform::MemberNameRule;

void load_universe(reflect::Domain& domain) {
  bench::load_people(domain);
  domain.load_assembly(fixtures::planner_meetings());
  domain.load_assembly(fixtures::agenda_meetings());
  domain.load_assembly(fixtures::bank_accounts());
  domain.load_assembly(fixtures::lists_a());
  domain.load_assembly(fixtures::lists_b());
}

void BM_Permutations(benchmark::State& state) {
  bench::paper_reference("E7 rule ablation (§4.2)",
                         "cost of permutations, name rules, aspect toggles, cache");
  reflect::Domain domain;
  load_universe(domain);
  ConformanceOptions options;
  options.allow_permutations = state.range(0) != 0;
  ConformanceChecker checker(domain.registry(), options);
  const auto& source = *domain.registry().find("agenda.Meeting");
  const auto& target = *domain.registry().find("planner.Meeting");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
  state.SetLabel(options.allow_permutations ? "perm-on(conformant)"
                                            : "perm-off(rejected)");
}
BENCHMARK(BM_Permutations)->Arg(1)->Arg(0);

void BM_MemberNameRules(benchmark::State& state) {
  reflect::Domain domain;
  load_universe(domain);
  ConformanceOptions options;
  const char* label = "";
  switch (state.range(0)) {
    case 0:
      options.member_name_rule = MemberNameRule::Exact;
      label = "exact(rejected)";
      break;
    case 1:
      options.member_name_rule = MemberNameRule::Contains;
      label = "contains(rejected)";  // getName is not a substring of getPersonName
      break;
    default:
      options.member_name_rule = MemberNameRule::TokenSubset;
      label = "token-subset(conformant)";
      break;
  }
  ConformanceChecker checker(domain.registry(), options);
  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
  state.SetLabel(label);
}
BENCHMARK(BM_MemberNameRules)->Arg(0)->Arg(1)->Arg(2);

void BM_AspectToggles(benchmark::State& state) {
  reflect::Domain domain;
  load_universe(domain);
  ConformanceOptions options;
  const char* label = "";
  switch (state.range(0)) {
    case 0:
      label = "full-rule";
      break;
    case 1:  // the paper's "weaker rule": names only — fast but unsafe
      options.check_fields = false;
      options.check_methods = false;
      options.check_constructors = false;
      options.check_supertypes = false;
      label = "name-only(unsafe)";
      break;
    default:
      options.check_supertypes = false;
      label = "no-supertypes";
      break;
  }
  ConformanceChecker checker(domain.registry(), options);
  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
  state.SetLabel(label);
}
BENCHMARK(BM_AspectToggles)->Arg(0)->Arg(1)->Arg(2);

/// A mixed workload of 8 pair checks, with and without the cache — the
/// steady-state cost a peer actually pays per received object.
void BM_CacheAblation(benchmark::State& state) {
  reflect::Domain domain;
  load_universe(domain);
  const bool use_cache = state.range(0) != 0;
  conform::ConformanceCache cache;
  ConformanceChecker checker(domain.registry(), {}, use_cache ? &cache : nullptr);

  const std::pair<const char*, const char*> pairs[] = {
      {"teamB.Person", "teamA.Person"},   {"teamA.Person", "teamB.Person"},
      {"agenda.Meeting", "planner.Meeting"}, {"bank.Account", "teamA.Person"},
      {"listsB.Node", "listsA.Node"},     {"teamB.Address", "teamA.Address"},
      {"bank.Account", "planner.Meeting"}, {"teamA.Person", "teamA.INamed"},
  };
  for (auto _ : state) {
    for (const auto& [src, tgt] : pairs) {
      benchmark::DoNotOptimize(checker.check(*domain.registry().find(src),
                                             *domain.registry().find(tgt)));
    }
  }
  state.SetLabel(use_cache ? "cache-on" : "cache-off");
  if (use_cache) state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAblation)->Arg(1)->Arg(0);

/// Levenshtein budget on type names: 0 (the paper) vs relaxed budgets.
void BM_NameDistanceBudget(benchmark::State& state) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::wide_type("wa", "Widget", 16, 16));
  domain.load_assembly(fixtures::wide_type("wb", "Gadget", 16, 16));
  ConformanceOptions options;
  options.max_name_distance = static_cast<std::uint32_t>(state.range(0));
  ConformanceChecker checker(domain.registry(), options);
  const auto& source = *domain.registry().find("wb.Gadget");
  const auto& target = *domain.registry().find("wa.Widget");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(source, target));
  }
  state.counters["max_distance"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NameDistanceBudget)->Arg(0)->Arg(2)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
